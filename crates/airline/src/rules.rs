//! Business rules: which meals a flight must cater.
//!
//! The OIS applies rules continuously as data arrives; these are the ones
//! the catering excerpt depends on.

use crate::data::{Dataset, Flight, Passenger};

/// One catered meal line: seat, cabin class, meal code, special-handling
/// flag, quantity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MealLine {
    /// Passenger record locator (6 base-36 chars of the booking id).
    pub pnr: String,
    /// Seat the meal is delivered to.
    pub seat: String,
    /// Cabin class (`F`/`B`/`Y`).
    pub class: u8,
    /// Meal code: `H`ot, `C`old, `S`nack, `V`egetarian, `K`osher,
    /// `G`luten-free.
    pub meal_code: u8,
    /// `1` when the meal needs special galley handling.
    pub special: u8,
    /// Quantity (first class on long haul gets two services).
    pub qty: i64,
}

/// Applies the catering rules for one passenger on one flight.
///
/// Rules (derived from the scenario, not the paper, which does not list
/// them):
/// * flights under 90 minutes cater snacks only, and only outside `Y`;
/// * vegetarian/kosher/gluten-free preferences override the class meal
///   and are flagged special;
/// * `F` on flights over 5 hours receives two services;
/// * passengers with meal preference `N` are skipped.
pub fn meal_for(flight: &Flight, p: &Passenger) -> Option<MealLine> {
    if p.meal_pref == b'N' {
        return None;
    }
    let short_haul = flight.duration_min < 90;
    if short_haul && p.class == b'Y' {
        return None;
    }
    let (meal_code, special) = match p.meal_pref {
        b'V' => (b'V', 1),
        b'K' => (b'K', 1),
        b'G' => (b'G', 1),
        _ if short_haul => (b'S', 0),
        _ if p.class == b'Y' => (b'C', 0),
        _ => (b'H', 0),
    };
    let qty = if p.class == b'F' && flight.duration_min > 300 {
        2
    } else {
        1
    };
    Some(MealLine {
        pnr: pnr_of(p.id),
        seat: p.seat.clone(),
        class: p.class,
        meal_code,
        special,
        qty,
    })
}

/// Renders a booking id as a 6-character base-36 record locator.
pub fn pnr_of(id: u64) -> String {
    const DIGITS: &[u8; 36] = b"0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ";
    let mut id = id;
    let mut out = [0u8; 6];
    for slot in out.iter_mut() {
        *slot = DIGITS[(id % 36) as usize];
        id /= 36;
    }
    String::from_utf8(out.to_vec()).expect("base36 is ascii")
}

/// All meal lines for a flight, in seat order.
pub fn catering_for(ds: &Dataset, flight_idx: usize) -> Vec<MealLine> {
    let flight = &ds.flights[flight_idx];
    let mut lines: Vec<MealLine> = ds
        .passengers_of(flight_idx)
        .filter_map(|p| meal_for(flight, p))
        .collect();
    lines.sort_by(|a, b| a.seat.cmp(&b.seat));
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flight(duration: u32) -> Flight {
        Flight {
            number: "DL0001".into(),
            origin: "ATL".into(),
            dest: "JFK".into(),
            departure_min: 600,
            duration_min: duration,
            aircraft: "B767-300".into(),
            capacity: 210,
        }
    }

    fn pax(class: u8, pref: u8) -> Passenger {
        Passenger {
            id: 1,
            seat: "12A".into(),
            class,
            meal_pref: pref,
            flight: 0,
        }
    }

    #[test]
    fn short_haul_economy_gets_nothing() {
        assert!(meal_for(&flight(60), &pax(b'Y', b'S')).is_none());
        assert!(meal_for(&flight(60), &pax(b'F', b'S')).is_some());
    }

    #[test]
    fn preferences_override_and_flag_special() {
        let m = meal_for(&flight(200), &pax(b'Y', b'K')).unwrap();
        assert_eq!(m.meal_code, b'K');
        assert_eq!(m.special, 1);
    }

    #[test]
    fn long_haul_first_gets_two_services() {
        assert_eq!(meal_for(&flight(400), &pax(b'F', b'S')).unwrap().qty, 2);
        assert_eq!(meal_for(&flight(200), &pax(b'F', b'S')).unwrap().qty, 1);
    }

    #[test]
    fn none_preference_skipped() {
        assert!(meal_for(&flight(400), &pax(b'F', b'N')).is_none());
    }

    #[test]
    fn catering_covers_most_of_a_long_haul_cabin() {
        let ds = Dataset::generate(5, 11);
        // Find a long flight.
        let idx = ds
            .flights
            .iter()
            .position(|f| f.duration_min >= 90)
            .unwrap();
        let lines = catering_for(&ds, idx);
        let pax_count = ds.passengers_of(idx).count();
        assert!(
            lines.len() > pax_count * 8 / 10,
            "{} of {pax_count}",
            lines.len()
        );
        // Sorted by seat.
        assert!(lines.windows(2).all(|w| w[0].seat <= w[1].seat));
    }
}
