//! An ECho substitute: typed publish/subscribe event channels.
//!
//! The remote-visualization experiment (§IV-C.4) runs over the group's
//! ECho event system: "The service portal acts as a sink for the 'ECho'
//! event source that generates bond data" — with *derived* channels whose
//! events are transformed by installed filter functions (ECho installs
//! these with dynamic code generation; here they are registered Rust
//! closures, the same substitution made for PBIO conversion plans).
//!
//! Semantics reproduced:
//! * channels are named and typed: submissions must conform to the
//!   channel's schema;
//! * any number of sources submit, any number of sinks subscribe;
//! * a *derived* channel applies a filter to every event of its parent —
//!   the filter may transform or drop events;
//! * sinks receive events in submission order (per source).

use sbq_model::{TypeDesc, Value};
use sbq_runtime::channel::{unbounded, Receiver, Sender};
use sbq_runtime::sync::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Errors from channel operations.
#[derive(Debug, Clone, PartialEq)]
pub enum EchoError {
    /// No channel with that name.
    NoSuchChannel(String),
    /// A channel with that name already exists.
    Exists(String),
    /// Submission did not conform to the channel type.
    TypeMismatch {
        /// Channel name.
        channel: String,
        /// Offending value's type name.
        found: String,
    },
}

impl std::fmt::Display for EchoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EchoError::NoSuchChannel(n) => write!(f, "no such channel {n}"),
            EchoError::Exists(n) => write!(f, "channel {n} already exists"),
            EchoError::TypeMismatch { channel, found } => {
                write!(f, "channel {channel} rejected a {found} event")
            }
        }
    }
}

impl std::error::Error for EchoError {}

/// A filter on a derived channel: transform (`Some`) or drop (`None`).
pub type Filter = Arc<dyn Fn(&Value) -> Option<Value> + Send + Sync>;

struct Channel {
    ty: TypeDesc,
    sinks: RwLock<Vec<Sender<Value>>>,
    /// (filter, derived channel name) pairs fed from this channel.
    derived: RwLock<Vec<(Filter, String)>>,
    submitted: std::sync::atomic::AtomicU64,
}

/// A process-local event bus holding named channels.
#[derive(Clone, Default)]
pub struct EchoBus {
    channels: Arc<RwLock<HashMap<String, Arc<Channel>>>>,
}

impl EchoBus {
    /// An empty bus.
    pub fn new() -> EchoBus {
        EchoBus::default()
    }

    /// Creates a typed channel.
    pub fn create_channel(&self, name: &str, ty: TypeDesc) -> Result<(), EchoError> {
        let mut map = self.channels.write();
        if map.contains_key(name) {
            return Err(EchoError::Exists(name.to_string()));
        }
        map.insert(
            name.to_string(),
            Arc::new(Channel {
                ty,
                sinks: RwLock::new(Vec::new()),
                derived: RwLock::new(Vec::new()),
                submitted: std::sync::atomic::AtomicU64::new(0),
            }),
        );
        Ok(())
    }

    fn get(&self, name: &str) -> Result<Arc<Channel>, EchoError> {
        self.channels
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| EchoError::NoSuchChannel(name.to_string()))
    }

    /// The channel's event schema.
    pub fn channel_type(&self, name: &str) -> Result<TypeDesc, EchoError> {
        Ok(self.get(name)?.ty.clone())
    }

    /// Channel names, sorted.
    pub fn channel_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.channels.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Subscribes a sink; events arrive on the returned receiver.
    pub fn subscribe(&self, name: &str) -> Result<Receiver<Value>, EchoError> {
        let ch = self.get(name)?;
        let (tx, rx) = unbounded();
        ch.sinks.write().push(tx);
        Ok(rx)
    }

    /// Creates a *derived* channel: every event of `parent` is passed
    /// through `filter`; `Some` results are submitted to the new channel.
    /// The derived channel's type is `ty` (the filter's output schema).
    pub fn derive(
        &self,
        parent: &str,
        name: &str,
        ty: TypeDesc,
        filter: Filter,
    ) -> Result<(), EchoError> {
        let p = self.get(parent)?;
        self.create_channel(name, ty)?;
        p.derived.write().push((filter, name.to_string()));
        Ok(())
    }

    /// Submits an event from a source. Delivery is synchronous fan-out to
    /// sinks and derived channels (recursively).
    pub fn submit(&self, name: &str, event: Value) -> Result<(), EchoError> {
        let ch = self.get(name)?;
        if !event.conforms_to(&ch.ty) {
            return Err(EchoError::TypeMismatch {
                channel: name.to_string(),
                found: event.type_of().name(),
            });
        }
        ch.submitted
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // Fan out to sinks, dropping disconnected ones.
        ch.sinks.write().retain(|tx| tx.send(event.clone()).is_ok());
        // Feed derived channels.
        let derived = ch.derived.read().clone();
        for (filter, dname) in derived {
            if let Some(out) = filter(&event) {
                // Recursive submission applies the derived channel's own
                // type check and further derivations.
                self.submit(&dname, out)?;
            }
        }
        Ok(())
    }

    /// Events submitted to a channel so far.
    pub fn submitted(&self, name: &str) -> Result<u64, EchoError> {
        Ok(self
            .get(name)?
            .submitted
            .load(std::sync::atomic::Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point_ty() -> TypeDesc {
        TypeDesc::struct_of("pt", vec![("x", TypeDesc::Float), ("y", TypeDesc::Float)])
    }

    fn pt(x: f64, y: f64) -> Value {
        Value::struct_of("pt", vec![("x", Value::Float(x)), ("y", Value::Float(y))])
    }

    #[test]
    fn submit_fans_out_to_all_sinks() {
        let bus = EchoBus::new();
        bus.create_channel("pts", point_ty()).unwrap();
        let rx1 = bus.subscribe("pts").unwrap();
        let rx2 = bus.subscribe("pts").unwrap();
        bus.submit("pts", pt(1.0, 2.0)).unwrap();
        assert_eq!(rx1.try_recv().unwrap(), pt(1.0, 2.0));
        assert_eq!(rx2.try_recv().unwrap(), pt(1.0, 2.0));
        assert_eq!(bus.submitted("pts").unwrap(), 1);
    }

    #[test]
    fn type_checked_submission() {
        let bus = EchoBus::new();
        bus.create_channel("pts", point_ty()).unwrap();
        let err = bus.submit("pts", Value::Int(5)).unwrap_err();
        assert!(matches!(err, EchoError::TypeMismatch { .. }));
        assert!(matches!(
            bus.submit("zzz", pt(0.0, 0.0)),
            Err(EchoError::NoSuchChannel(_))
        ));
    }

    #[test]
    fn duplicate_channel_rejected() {
        let bus = EchoBus::new();
        bus.create_channel("a", TypeDesc::Int).unwrap();
        assert_eq!(
            bus.create_channel("a", TypeDesc::Int),
            Err(EchoError::Exists("a".into()))
        );
    }

    #[test]
    fn derived_channels_transform_and_drop() {
        let bus = EchoBus::new();
        bus.create_channel("pts", point_ty()).unwrap();
        // Derived: keep only x >= 0, project to the x coordinate.
        bus.derive(
            "pts",
            "xs",
            TypeDesc::Float,
            Arc::new(|v: &Value| {
                let x = v.as_struct().ok()?.field("x")?.as_float().ok()?;
                (x >= 0.0).then_some(Value::Float(x))
            }),
        )
        .unwrap();
        let rx = bus.subscribe("xs").unwrap();
        bus.submit("pts", pt(3.0, 1.0)).unwrap();
        bus.submit("pts", pt(-2.0, 1.0)).unwrap();
        bus.submit("pts", pt(5.0, 0.0)).unwrap();
        assert_eq!(rx.try_recv().unwrap(), Value::Float(3.0));
        assert_eq!(rx.try_recv().unwrap(), Value::Float(5.0));
        assert!(rx.try_recv().is_err(), "dropped event leaked");
    }

    #[test]
    fn chained_derivation() {
        let bus = EchoBus::new();
        bus.create_channel("a", TypeDesc::Int).unwrap();
        bus.derive(
            "a",
            "b",
            TypeDesc::Int,
            Arc::new(|v| Some(Value::Int(v.as_int().ok()? * 2))),
        )
        .unwrap();
        bus.derive(
            "b",
            "c",
            TypeDesc::Int,
            Arc::new(|v| Some(Value::Int(v.as_int().ok()? + 1))),
        )
        .unwrap();
        let rx = bus.subscribe("c").unwrap();
        bus.submit("a", Value::Int(10)).unwrap();
        assert_eq!(rx.try_recv().unwrap(), Value::Int(21));
    }

    #[test]
    fn disconnected_sinks_are_pruned() {
        let bus = EchoBus::new();
        bus.create_channel("a", TypeDesc::Int).unwrap();
        let rx = bus.subscribe("a").unwrap();
        drop(rx);
        bus.submit("a", Value::Int(1)).unwrap(); // must not error
        let rx2 = bus.subscribe("a").unwrap();
        bus.submit("a", Value::Int(2)).unwrap();
        assert_eq!(rx2.try_recv().unwrap(), Value::Int(2));
    }

    #[test]
    fn cross_thread_delivery() {
        let bus = EchoBus::new();
        bus.create_channel("a", TypeDesc::Int).unwrap();
        let rx = bus.subscribe("a").unwrap();
        let bus2 = bus.clone();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                bus2.submit("a", Value::Int(i)).unwrap();
            }
        });
        t.join().unwrap();
        let got: Vec<i64> = rx.try_iter().map(|v| v.as_int().unwrap()).collect();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
