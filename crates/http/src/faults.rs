//! Server-side fault injection for resilience tests.
//!
//! A [`FaultSchedule`] is keyed by the server's global request counter, the
//! same way `sbq-netsim` keys its network schedules by virtual time: the
//! test declares up front "request 0 loses its response, request 3 is
//! delayed 200 ms", runs the workload, and asserts on the recovery path.
//! Scheduling by request index keeps runs deterministic under any thread
//! interleaving.

use std::time::Duration;

/// What to do to a single response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Swallow the response and close the connection — the client sees the
    /// peer hang up before any status line.
    DropResponse,
    /// Hold the response for the given duration before sending it intact.
    DelayResponse(Duration),
    /// Send only the first `n` bytes of the response, then close.
    TruncateResponse(usize),
    /// Send half of the response bytes, then close mid-body.
    CloseMidResponse,
}

/// An ordered plan of response faults, keyed by the zero-based index of the
/// request (counting every successfully parsed request across all
/// connections).
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    entries: Vec<(u64, FaultAction)>,
}

impl FaultSchedule {
    /// An empty schedule: no faults.
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Schedules `action` for the `request`-th parsed request.
    pub fn at(mut self, request: u64, action: FaultAction) -> FaultSchedule {
        self.entries.push((request, action));
        self
    }

    /// Schedules `action` for each of the first `n` requests.
    pub fn for_first(mut self, n: u64, action: FaultAction) -> FaultSchedule {
        for i in 0..n {
            self.entries.push((i, action));
        }
        self
    }

    /// Whether any fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The action (if any) for request number `request`.
    pub fn action_for(&self, request: u64) -> Option<FaultAction> {
        self.entries
            .iter()
            .find(|(i, _)| *i == request)
            .map(|(_, a)| *a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_never_fires() {
        let s = FaultSchedule::new();
        assert!(s.is_empty());
        assert_eq!(s.action_for(0), None);
        assert_eq!(s.action_for(17), None);
    }

    #[test]
    fn actions_fire_at_their_index_only() {
        let s = FaultSchedule::new()
            .at(0, FaultAction::DropResponse)
            .at(3, FaultAction::DelayResponse(Duration::from_millis(5)));
        assert_eq!(s.action_for(0), Some(FaultAction::DropResponse));
        assert_eq!(s.action_for(1), None);
        assert_eq!(
            s.action_for(3),
            Some(FaultAction::DelayResponse(Duration::from_millis(5)))
        );
    }

    #[test]
    fn for_first_covers_prefix() {
        let s = FaultSchedule::new().for_first(3, FaultAction::CloseMidResponse);
        for i in 0..3 {
            assert_eq!(s.action_for(i), Some(FaultAction::CloseMidResponse));
        }
        assert_eq!(s.action_for(3), None);
    }
}
