//! Server-side fault injection for resilience tests.
//!
//! A [`FaultSchedule`] is keyed by the server's global request counter, the
//! same way `sbq-netsim` keys its network schedules by virtual time: the
//! test declares up front "request 0 loses its response, request 3 is
//! delayed 200 ms", runs the workload, and asserts on the recovery path.
//! Scheduling by request index keeps runs deterministic under any thread
//! interleaving.

use std::time::Duration;

/// What to do to a single response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Swallow the response and close the connection — the client sees the
    /// peer hang up before any status line.
    DropResponse,
    /// Hold the response for the given duration before sending it intact.
    DelayResponse(Duration),
    /// Send only the first `n` bytes of the response, then close.
    TruncateResponse(usize),
    /// Send half of the response bytes, then close mid-body.
    CloseMidResponse,
}

/// An ordered plan of response faults, keyed by the zero-based index of the
/// request (counting every successfully parsed request across all
/// connections), plus optional I/O *shaping* applied to every connection:
/// short reads/writes and periodic `EINTR` injection that exercise the
/// partial-progress paths of the event-driven state machines.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    entries: Vec<(u64, FaultAction)>,
    stalls: Vec<(u64, Duration)>,
    read_cap: Option<usize>,
    write_cap: Option<usize>,
    interrupt_every: Option<u64>,
}

impl FaultSchedule {
    /// An empty schedule: no faults.
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Schedules `action` for the `request`-th parsed request.
    pub fn at(mut self, request: u64, action: FaultAction) -> FaultSchedule {
        self.entries.push((request, action));
        self
    }

    /// Schedules `action` for each of the first `n` requests.
    pub fn for_first(mut self, n: u64, action: FaultAction) -> FaultSchedule {
        for i in 0..n {
            self.entries.push((i, action));
        }
        self
    }

    /// Caps every socket read the server performs at `max` bytes,
    /// forcing the read state machines to make progress one sliver at a
    /// time (a header can arrive byte by byte).
    pub fn short_reads(mut self, max: usize) -> FaultSchedule {
        self.read_cap = Some(max.max(1));
        self
    }

    /// Caps every socket write the server performs at `max` bytes — a
    /// response is written in `max`-byte slivers, exercising partial-write
    /// resumption (`max = 1` writes it one byte at a time).
    pub fn short_writes(mut self, max: usize) -> FaultSchedule {
        self.write_cap = Some(max.max(1));
        self
    }

    /// Makes every `nth` shaped I/O operation fail with `EINTR`
    /// (`ErrorKind::Interrupted`), which correct state machines must
    /// transparently retry.
    pub fn interrupt_every(mut self, nth: u64) -> FaultSchedule {
        self.interrupt_every = Some(nth.max(1));
        self
    }

    /// Stalls the **event-loop thread** for `d` when the `request`-th
    /// parsed request is dispatched — the one fault the non-blocking
    /// design forbids by construction, injected deliberately so the
    /// loop-lag watchdog has something real to catch. Every connection
    /// freezes for the duration; responses are still delivered intact.
    pub fn stall_event_loop(mut self, request: u64, d: Duration) -> FaultSchedule {
        self.stalls.push((request, d));
        self
    }

    /// Whether any fault is scheduled. I/O shaping does not count: a
    /// shaped schedule with no entries still delivers every response.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The action (if any) for request number `request`.
    pub fn action_for(&self, request: u64) -> Option<FaultAction> {
        self.entries
            .iter()
            .find(|(i, _)| *i == request)
            .map(|(_, a)| *a)
    }

    /// The event-loop stall (if any) for request number `request`.
    pub(crate) fn stall_for(&self, request: u64) -> Option<Duration> {
        self.stalls
            .iter()
            .find(|(i, _)| *i == request)
            .map(|(_, d)| *d)
    }

    /// Per-read byte cap from [`FaultSchedule::short_reads`], if any.
    pub(crate) fn read_cap(&self) -> Option<usize> {
        self.read_cap
    }

    /// Per-write byte cap from [`FaultSchedule::short_writes`], if any.
    pub(crate) fn write_cap(&self) -> Option<usize> {
        self.write_cap
    }

    /// `EINTR` period from [`FaultSchedule::interrupt_every`], if any.
    pub(crate) fn interrupt_period(&self) -> Option<u64> {
        self.interrupt_every
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_schedule_never_fires() {
        let s = FaultSchedule::new();
        assert!(s.is_empty());
        assert_eq!(s.action_for(0), None);
        assert_eq!(s.action_for(17), None);
    }

    #[test]
    fn actions_fire_at_their_index_only() {
        let s = FaultSchedule::new()
            .at(0, FaultAction::DropResponse)
            .at(3, FaultAction::DelayResponse(Duration::from_millis(5)));
        assert_eq!(s.action_for(0), Some(FaultAction::DropResponse));
        assert_eq!(s.action_for(1), None);
        assert_eq!(
            s.action_for(3),
            Some(FaultAction::DelayResponse(Duration::from_millis(5)))
        );
    }

    #[test]
    fn for_first_covers_prefix() {
        let s = FaultSchedule::new().for_first(3, FaultAction::CloseMidResponse);
        for i in 0..3 {
            assert_eq!(s.action_for(i), Some(FaultAction::CloseMidResponse));
        }
        assert_eq!(s.action_for(3), None);
    }

    #[test]
    fn stall_fires_at_its_index_only() {
        let s = FaultSchedule::new().stall_event_loop(2, Duration::from_millis(300));
        assert_eq!(s.stall_for(0), None);
        assert_eq!(s.stall_for(2), Some(Duration::from_millis(300)));
        assert!(s.is_empty(), "a stall drops no responses");
    }

    #[test]
    fn shaping_does_not_make_the_schedule_non_empty() {
        let s = FaultSchedule::new().short_reads(1).short_writes(0);
        assert!(s.is_empty(), "shaping alone drops no responses");
        assert_eq!(s.read_cap(), Some(1));
        assert_eq!(s.write_cap(), Some(1), "zero cap clamps to one byte");
        assert_eq!(s.interrupt_period(), None);
        let s = s.interrupt_every(3);
        assert_eq!(s.interrupt_period(), Some(3));
    }
}
