//! Strict, streaming HTTP/1.1 body framing.
//!
//! This module owns everything between the header section and the next
//! message on a keep-alive connection: deciding how a body is framed
//! ([`parse_framing`]), reading it incrementally under size limits
//! ([`BodyReader`]), and writing it either with a `Content-Length` or as
//! `Transfer-Encoding: chunked` ([`ChunkPolicy`], [`write_framed`]).
//!
//! Strictness matters here because framing errors desynchronize
//! connections: a `Content-Length` that is silently mis-parsed leaves the
//! unread body on the stream, where it is parsed as the *next* request —
//! the classic request-smuggling shape. Every malformed, negative,
//! duplicate-conflicting, or `Transfer-Encoding`-conflicting length is
//! therefore rejected with [`HttpError::Protocol`] and the connection is
//! closed; nothing ever defaults to "no body".
//!
//! Streaming matters because the imaging/visualization workloads push
//! multi-megabyte payloads: the framing layer only ever holds one chunk
//! (or one header line) of transient state, never a second copy of the
//! whole message. [`peak_framing_buffer`] exposes the process-wide
//! high-water mark of those transient buffers so tests and benches can
//! assert the bound.

use crate::message::{HttpError, Limits, TimeoutKind};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Longest chunk-size line we accept: 16 hex digits (a full `u64`) plus a
/// generous allowance for a chunk extension, which we ignore.
const MAX_CHUNK_SIZE_LINE: usize = 256;

// ---------------------------------------------------------------------------
// Framing-buffer instrumentation
// ---------------------------------------------------------------------------

/// High-water mark of any transient buffer the framing layer allocated or
/// processed at once (header lines, chunk-size lines, single chunks, and
/// whole-message materializations via `to_bytes`). The caller-visible body
/// `Vec` is *not* counted — the point of this gauge is to prove that
/// framing a 64 MiB body never needs a second 64 MiB buffer.
static PEAK_FRAMING_BUFFER: AtomicUsize = AtomicUsize::new(0);

pub(crate) fn record_framing_buffer(n: usize) {
    PEAK_FRAMING_BUFFER.fetch_max(n, Ordering::Relaxed);
}

/// The largest transient framing buffer observed process-wide since the
/// last [`reset_peak_framing_buffer`]. With chunked transfer this is
/// bounded by the configured chunk size regardless of body size.
pub fn peak_framing_buffer() -> usize {
    PEAK_FRAMING_BUFFER.load(Ordering::Relaxed)
}

/// Resets the high-water mark (tests/benches).
pub fn reset_peak_framing_buffer() {
    PEAK_FRAMING_BUFFER.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Framing declaration
// ---------------------------------------------------------------------------

/// How a message body is framed, as declared by its headers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyFraming {
    /// `Content-Length: n` (a missing length means `Length(0)`: every
    /// framing this stack emits declares its length explicitly).
    Length(u64),
    /// `Transfer-Encoding: chunked`.
    Chunked,
}

/// Derives the body framing from a parsed header section, strictly:
///
/// * `Content-Length` must be pure ASCII digits — signs, empty values and
///   any other junk are protocol errors, never "zero";
/// * repeated `Content-Length` headers (or comma-separated value lists)
///   must all agree, otherwise the message is rejected;
/// * `Transfer-Encoding` must be exactly `chunked` (we never emit, and
///   refuse to guess about, other codings);
/// * `Content-Length` together with `Transfer-Encoding` is rejected
///   outright — that combination is the request-smuggling vector of RFC
///   7230 §3.3.3.
pub fn parse_framing(headers: &[(String, String)]) -> Result<BodyFraming, HttpError> {
    let mut declared: Option<u64> = None;
    let mut chunked = false;
    for (name, value) in headers {
        if name.eq_ignore_ascii_case("content-length") {
            // A repeated header and a comma-joined value list are the same
            // thing after HTTP field-line folding; treat them identically.
            for part in value.split(',') {
                let len = parse_content_length(part.trim())?;
                match declared {
                    Some(prev) if prev != len => {
                        return Err(HttpError::Protocol(format!(
                            "conflicting content-length values: {prev} vs {len}"
                        )));
                    }
                    _ => declared = Some(len),
                }
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            if value.trim().eq_ignore_ascii_case("chunked") {
                chunked = true;
            } else {
                return Err(HttpError::Protocol(format!(
                    "unsupported transfer-encoding: {value:?}"
                )));
            }
        }
    }
    if chunked {
        if declared.is_some() {
            return Err(HttpError::Protocol(
                "both content-length and transfer-encoding present".into(),
            ));
        }
        return Ok(BodyFraming::Chunked);
    }
    Ok(BodyFraming::Length(declared.unwrap_or(0)))
}

fn parse_content_length(s: &str) -> Result<u64, HttpError> {
    if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
        return Err(HttpError::Protocol(format!(
            "invalid content-length: {s:?}"
        )));
    }
    s.parse::<u64>()
        .map_err(|_| HttpError::Protocol(format!("content-length out of range: {s:?}")))
}

// ---------------------------------------------------------------------------
// Bounded line reads
// ---------------------------------------------------------------------------

/// Reads one CRLF- (or LF-) terminated line without ever buffering more
/// than `cap` bytes of it: the limit is enforced incrementally against the
/// underlying buffer, so a newline-less flood is rejected after `cap`
/// bytes instead of being accumulated to arbitrary size first.
///
/// Returns `Ok(None)` on EOF before any byte (clean close). A line that is
/// cut off by EOF is returned as-is, like `BufRead::read_line`.
pub(crate) fn read_line_capped(
    r: &mut impl BufRead,
    cap: usize,
    what: &'static str,
) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let consumed = {
            let buf = r
                .fill_buf()
                .map_err(|e| HttpError::from_io(e, TimeoutKind::Read))?;
            if buf.is_empty() {
                if line.is_empty() {
                    return Ok(None);
                }
                break; // EOF mid-line: surface what we have
            }
            let newline = buf.iter().position(|&b| b == b'\n');
            let take = newline.map(|p| p + 1).unwrap_or(buf.len());
            // The cap counts line content; allow the CRLF itself on top so
            // a line of exactly `cap` bytes still parses. Checked *before*
            // buffering, so no input makes us hold more than cap + 2.
            if line.len() + take > cap + 2 {
                return Err(HttpError::TooLarge { what, limit: cap });
            }
            line.extend_from_slice(&buf[..take]);
            record_framing_buffer(line.len());
            take
        };
        r.consume(consumed);
        if line.ends_with(b"\n") {
            break;
        }
    }
    while line.last() == Some(&b'\n') || line.last() == Some(&b'\r') {
        line.pop();
    }
    if line.len() > cap {
        return Err(HttpError::TooLarge { what, limit: cap });
    }
    String::from_utf8(line)
        .map(Some)
        .map_err(|_| HttpError::Protocol("header line is not valid utf-8".into()))
}

// ---------------------------------------------------------------------------
// Streaming body reader
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum ReadState {
    /// Plain `Content-Length` body: bytes left to read.
    Length { remaining: u64 },
    /// Between chunks: the next thing on the stream is a chunk-size line.
    ChunkSize { total: u64 },
    /// Inside a chunk's data.
    ChunkData { remaining: u64, total: u64 },
    /// Fully consumed (trailers included).
    Done,
}

/// Opaque, copyable snapshot of a body read in progress — what lets a
/// non-blocking caller park a partially-read body when the socket runs
/// dry and resume it (via [`BodyReader::resume`]) when more bytes
/// arrive. Snapshots are only meaningful at `read_some` boundaries: the
/// event-driven server snapshots before each call and rolls back to the
/// snapshot when the call fails with `WouldBlock` mid-token.
#[derive(Debug, Clone, Copy)]
pub struct BodyState(ReadState);

impl BodyState {
    /// The initial state for a body framed as `framing`. A declared
    /// `Content-Length` beyond `max_body_bytes` is rejected here, before
    /// any of it is read.
    pub fn start(framing: BodyFraming, limits: &Limits) -> Result<BodyState, HttpError> {
        Ok(BodyState(match framing {
            BodyFraming::Length(n) => {
                if n > limits.max_body_bytes as u64 {
                    return Err(HttpError::TooLarge {
                        what: "body",
                        limit: limits.max_body_bytes,
                    });
                }
                ReadState::Length { remaining: n }
            }
            BodyFraming::Chunked => ReadState::ChunkSize { total: 0 },
        }))
    }

    /// Whether the body is fully consumed.
    pub fn is_done(&self) -> bool {
        matches!(self.0, ReadState::Done)
    }
}

/// An in-memory byte cursor whose exhaustion is `WouldBlock`, not EOF.
///
/// The event-driven server parses bodies out of whatever bytes have
/// arrived so far; running out of buffered bytes means "wait for the
/// next readiness event", never "the peer closed". Wrapping the buffered
/// slice in this cursor makes [`BodyReader`] surface that distinction as
/// `HttpError::Timeout(Read)` (the `WouldBlock` mapping) instead of a
/// truncation protocol error.
pub(crate) struct NonBlockCursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> NonBlockCursor<'a> {
    pub(crate) fn new(data: &'a [u8]) -> NonBlockCursor<'a> {
        NonBlockCursor { data, pos: 0 }
    }

    /// Bytes consumed so far.
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// Rolls the cursor back to an earlier position (snapshot restore).
    pub(crate) fn set_pos(&mut self, pos: usize) {
        debug_assert!(pos <= self.data.len());
        self.pos = pos.min(self.data.len());
    }
}

impl std::io::Read for NonBlockCursor<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let avail = std::io::BufRead::fill_buf(self)?;
        let n = avail.len().min(buf.len());
        buf[..n].copy_from_slice(&avail[..n]);
        self.pos += n;
        Ok(n)
    }
}

impl BufRead for NonBlockCursor<'_> {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if self.pos >= self.data.len() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                "buffered bytes exhausted",
            ));
        }
        Ok(&self.data[self.pos..])
    }

    fn consume(&mut self, amt: usize) {
        self.pos = (self.pos + amt).min(self.data.len());
    }
}

/// Incremental body reader: pulls body bytes out of a buffered stream
/// under the declared [`BodyFraming`], enforcing `max_body_bytes` (both
/// framings) and `max_chunk_bytes` (chunked) *as it goes*, so a hostile
/// peer can never make it buffer beyond the limits. One instance reads
/// exactly one message body and leaves the stream positioned at the next
/// message — the property keep-alive connections live or die by.
pub struct BodyReader<'a, R: BufRead> {
    src: &'a mut R,
    state: ReadState,
    limits: Limits,
}

impl<'a, R: BufRead> BodyReader<'a, R> {
    /// Starts reading a body framed as `framing`. A declared
    /// `Content-Length` beyond `max_body_bytes` is rejected here, before
    /// any of it is read.
    pub fn new(src: &'a mut R, framing: BodyFraming, limits: &Limits) -> Result<Self, HttpError> {
        Ok(Self::resume(
            src,
            BodyState::start(framing, limits)?,
            limits,
        ))
    }

    /// Continues a body read from a [`BodyState`] snapshot (see
    /// [`BodyReader::state`]). The non-blocking server uses this to pick
    /// a partially-read body back up on the next readiness event.
    pub fn resume(src: &'a mut R, state: BodyState, limits: &Limits) -> Self {
        BodyReader {
            src,
            state: state.0,
            limits: *limits,
        }
    }

    /// Snapshot of the framing position, valid at `read_some`
    /// boundaries.
    pub fn state(&self) -> BodyState {
        BodyState(self.state)
    }

    /// Reads some body bytes into `scratch`, returning how many were
    /// written; `Ok(0)` means the body is complete. At most one chunk (or
    /// `scratch.len()` bytes) is consumed per call, so the caller's
    /// buffer bounds the transient memory.
    pub fn read_some(&mut self, scratch: &mut [u8]) -> Result<usize, HttpError> {
        if scratch.is_empty() {
            return Ok(0);
        }
        loop {
            match self.state {
                ReadState::Done => return Ok(0),
                ReadState::Length { remaining } => {
                    if remaining == 0 {
                        self.state = ReadState::Done;
                        return Ok(0);
                    }
                    let want = (scratch.len() as u64).min(remaining) as usize;
                    let n = self
                        .src
                        .read(&mut scratch[..want])
                        .map_err(|e| HttpError::from_io(e, TimeoutKind::Read))?;
                    if n == 0 {
                        return Err(HttpError::Protocol("body truncated by peer".into()));
                    }
                    self.state = ReadState::Length {
                        remaining: remaining - n as u64,
                    };
                    return Ok(n);
                }
                ReadState::ChunkSize { total } => {
                    let size = self.read_chunk_size()?;
                    if size == 0 {
                        self.read_trailers()?;
                        self.state = ReadState::Done;
                        return Ok(0);
                    }
                    if size > self.limits.max_chunk_bytes as u64 {
                        return Err(HttpError::TooLarge {
                            what: "chunk",
                            limit: self.limits.max_chunk_bytes,
                        });
                    }
                    // Cumulative cap, checked before the chunk is read.
                    if total + size > self.limits.max_body_bytes as u64 {
                        return Err(HttpError::TooLarge {
                            what: "body",
                            limit: self.limits.max_body_bytes,
                        });
                    }
                    self.state = ReadState::ChunkData {
                        remaining: size,
                        total: total + size,
                    };
                }
                ReadState::ChunkData { remaining, total } => {
                    let want = (scratch.len() as u64).min(remaining) as usize;
                    let n = self
                        .src
                        .read(&mut scratch[..want])
                        .map_err(|e| HttpError::from_io(e, TimeoutKind::Read))?;
                    if n == 0 {
                        return Err(HttpError::Protocol("truncated chunk".into()));
                    }
                    record_framing_buffer(n);
                    let remaining = remaining - n as u64;
                    if remaining == 0 {
                        self.expect_crlf()?;
                        self.state = ReadState::ChunkSize { total };
                    } else {
                        self.state = ReadState::ChunkData { remaining, total };
                    }
                    return Ok(n);
                }
            }
        }
    }

    /// Drains the whole body into a `Vec`, growing it chunk by chunk (the
    /// `Vec` is the caller's body storage; the framing layer itself holds
    /// no second copy).
    pub fn read_to_vec(mut self) -> Result<Vec<u8>, HttpError> {
        match self.state {
            ReadState::Length { remaining } => {
                // Exact-size fast path: the declared length was validated
                // against max_body_bytes in `new`.
                let mut body = vec![0u8; remaining as usize];
                self.src.read_exact(&mut body).map_err(|e| {
                    if e.kind() == std::io::ErrorKind::UnexpectedEof {
                        HttpError::Protocol("body truncated by peer".into())
                    } else {
                        HttpError::from_io(e, TimeoutKind::Read)
                    }
                })?;
                self.state = ReadState::Done;
                Ok(body)
            }
            _ => {
                let mut body = Vec::new();
                let mut scratch = vec![0u8; self.limits.max_chunk_bytes.clamp(512, 64 * 1024)];
                loop {
                    let n = self.read_some(&mut scratch)?;
                    if n == 0 {
                        return Ok(body);
                    }
                    body.extend_from_slice(&scratch[..n]);
                }
            }
        }
    }

    /// Like [`BodyReader::read_to_vec`], but the body (and the chunked
    /// scratch buffer) come from `pool`, so a warm pool serves the whole
    /// read without touching the allocator. Empty bodies skip the pool
    /// entirely — body-less messages must not churn it.
    pub fn read_to_pooled(mut self, pool: &sbq_runtime::BufferPool) -> Result<Vec<u8>, HttpError> {
        match self.state {
            ReadState::Length { remaining: 0 } => {
                self.state = ReadState::Done;
                Ok(Vec::new())
            }
            ReadState::Length { remaining } => {
                let n = remaining as usize;
                let mut body = pool.get(n);
                body.resize(n, 0);
                self.src.read_exact(&mut body).map_err(|e| {
                    if e.kind() == std::io::ErrorKind::UnexpectedEof {
                        HttpError::Protocol("body truncated by peer".into())
                    } else {
                        HttpError::from_io(e, TimeoutKind::Read)
                    }
                })?;
                self.state = ReadState::Done;
                Ok(body)
            }
            _ => {
                let scratch_len = self.limits.max_chunk_bytes.clamp(512, 64 * 1024);
                let mut scratch = pool.get(scratch_len);
                scratch.resize(scratch_len, 0);
                let mut body = pool.get(scratch_len);
                loop {
                    let n = self.read_some(&mut scratch)?;
                    if n == 0 {
                        pool.put(scratch);
                        return Ok(body);
                    }
                    body.extend_from_slice(&scratch[..n]);
                }
            }
        }
    }

    fn read_chunk_size(&mut self) -> Result<u64, HttpError> {
        let line = read_line_capped(self.src, MAX_CHUNK_SIZE_LINE, "chunk-size line")?
            .ok_or_else(|| HttpError::Protocol("eof before chunk size".into()))?;
        // Chunk extensions (";ext=val") are tolerated and ignored.
        let digits = line.split(';').next().unwrap_or("").trim();
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(HttpError::Protocol(format!("bad chunk size: {line:?}")));
        }
        u64::from_str_radix(digits, 16)
            .map_err(|_| HttpError::Protocol(format!("chunk size out of range: {line:?}")))
    }

    fn read_trailers(&mut self) -> Result<(), HttpError> {
        // Trailer fields are read (bounded like headers) and discarded.
        let mut total = 0usize;
        loop {
            let line = read_line_capped(self.src, self.limits.max_header_bytes, "header")?
                .ok_or_else(|| HttpError::Protocol("eof in chunked trailers".into()))?;
            if line.is_empty() {
                return Ok(());
            }
            total += line.len();
            if total > self.limits.max_header_bytes {
                return Err(HttpError::TooLarge {
                    what: "header",
                    limit: self.limits.max_header_bytes,
                });
            }
        }
    }

    fn expect_crlf(&mut self) -> Result<(), HttpError> {
        let mut crlf = [0u8; 2];
        self.src.read_exact(&mut crlf).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                HttpError::Protocol("truncated chunk".into())
            } else {
                HttpError::from_io(e, TimeoutKind::Read)
            }
        })?;
        if &crlf != b"\r\n" {
            return Err(HttpError::Protocol("missing chunk terminator".into()));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Chunked / streamed writing
// ---------------------------------------------------------------------------

/// When a sender switches from `Content-Length` framing to
/// `Transfer-Encoding: chunked`: never by default, or for bodies of at
/// least `threshold` bytes. Chunking is what lets a receiver process a
/// large body with transient buffers bounded by `chunk_size` instead of
/// the body size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPolicy {
    threshold: Option<usize>,
    chunk_size: usize,
}

impl ChunkPolicy {
    /// Default chunk size for streamed bodies.
    pub const DEFAULT_CHUNK_SIZE: usize = 64 * 1024;

    /// Never chunk: every body is sent with a `Content-Length`.
    pub fn disabled() -> ChunkPolicy {
        ChunkPolicy {
            threshold: None,
            chunk_size: Self::DEFAULT_CHUNK_SIZE,
        }
    }

    /// Chunk bodies of at least `threshold` bytes.
    pub fn above(threshold: usize) -> ChunkPolicy {
        ChunkPolicy {
            threshold: Some(threshold),
            chunk_size: Self::DEFAULT_CHUNK_SIZE,
        }
    }

    /// Sets the chunk size used when chunking applies (at least 1).
    pub fn chunk_size(mut self, n: usize) -> ChunkPolicy {
        self.chunk_size = n.max(1);
        self
    }

    /// Whether a body of `len` bytes is sent chunked under this policy.
    pub fn applies_to(&self, len: usize) -> bool {
        self.threshold.is_some_and(|t| len >= t)
    }

    /// The configured chunk size.
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_size
    }
}

impl Default for ChunkPolicy {
    fn default() -> ChunkPolicy {
        ChunkPolicy::disabled()
    }
}

/// Writes one full message (start line + headers + body) under `policy`.
///
/// The head is assembled in a small buffer; the body is written straight
/// from the caller's slice — whole for `Content-Length` framing, in
/// `chunk_size` slices for chunked framing — so no second body-sized
/// buffer ever exists. When chunking applies, any `Content-Length` or
/// `Transfer-Encoding` headers in `headers` are replaced by a single
/// `Transfer-Encoding: chunked` on the wire.
pub(crate) fn write_framed(
    w: &mut impl Write,
    start_line: &str,
    headers: &[(String, String)],
    body: &[u8],
    policy: &ChunkPolicy,
) -> std::io::Result<()> {
    let chunked = policy.applies_to(body.len());
    let mut head = Vec::with_capacity(256);
    head.extend_from_slice(start_line.as_bytes());
    for (k, v) in headers {
        if chunked
            && (k.eq_ignore_ascii_case("content-length")
                || k.eq_ignore_ascii_case("transfer-encoding"))
        {
            continue;
        }
        head.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
    }
    if chunked {
        head.extend_from_slice(b"Transfer-Encoding: chunked\r\n");
    }
    head.extend_from_slice(b"\r\n");
    record_framing_buffer(head.len());
    w.write_all(&head)?;
    if chunked {
        for chunk in body.chunks(policy.chunk_size) {
            record_framing_buffer(chunk.len());
            write!(w, "{:x}\r\n", chunk.len())?;
            w.write_all(chunk)?;
            w.write_all(b"\r\n")?;
        }
        w.write_all(b"0\r\n\r\n")?;
    } else {
        w.write_all(body)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Read};

    fn hdrs(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn framing_strictness() {
        assert_eq!(
            parse_framing(&hdrs(&[("Content-Length", "42")])).unwrap(),
            BodyFraming::Length(42)
        );
        assert_eq!(parse_framing(&hdrs(&[])).unwrap(), BodyFraming::Length(0));
        assert_eq!(
            parse_framing(&hdrs(&[("Transfer-Encoding", "chunked")])).unwrap(),
            BodyFraming::Chunked
        );
        // Duplicates that agree are fine; everything else is an error.
        assert_eq!(
            parse_framing(&hdrs(&[("Content-Length", "7"), ("content-length", "7")])).unwrap(),
            BodyFraming::Length(7)
        );
        for bad in [
            hdrs(&[("Content-Length", "-5")]),
            hdrs(&[("Content-Length", "+5")]),
            hdrs(&[("Content-Length", "banana")]),
            hdrs(&[("Content-Length", "")]),
            hdrs(&[("Content-Length", "4 4")]),
            hdrs(&[("Content-Length", "18446744073709551616")]), // u64::MAX + 1
            hdrs(&[("Content-Length", "4"), ("Content-Length", "5")]),
            hdrs(&[("Content-Length", "4, 5")]),
            hdrs(&[("Content-Length", "4"), ("Transfer-Encoding", "chunked")]),
            hdrs(&[("Transfer-Encoding", "gzip")]),
            hdrs(&[("Transfer-Encoding", "identity, chunked")]),
        ] {
            assert!(
                matches!(parse_framing(&bad), Err(HttpError::Protocol(_))),
                "{bad:?} must be rejected"
            );
        }
        // A comma list that agrees is the duplicate-header case in disguise.
        assert_eq!(
            parse_framing(&hdrs(&[("Content-Length", "9, 9")])).unwrap(),
            BodyFraming::Length(9)
        );
    }

    #[test]
    fn chunked_decode_round_trip() {
        let wire = b"4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\nNEXT";
        let mut r = BufReader::new(&wire[..]);
        let body = BodyReader::new(&mut r, BodyFraming::Chunked, &Limits::default())
            .unwrap()
            .read_to_vec()
            .unwrap();
        assert_eq!(body, b"Wikipedia");
        // The reader stopped exactly at the end of the terminator, leaving
        // the next message intact.
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"NEXT");
    }

    #[test]
    fn chunked_extensions_and_trailers_tolerated() {
        let wire = b"3;ext=\"v\"\r\nabc\r\n0\r\nX-Trailer: t\r\n\r\n";
        let mut r = BufReader::new(&wire[..]);
        let body = BodyReader::new(&mut r, BodyFraming::Chunked, &Limits::default())
            .unwrap()
            .read_to_vec()
            .unwrap();
        assert_eq!(body, b"abc");
    }

    #[test]
    fn truncated_chunk_is_a_protocol_error() {
        for wire in [
            &b"ff\r\nonly a few bytes"[..], // EOF inside chunk data
            b"4\r\nWiki",                   // EOF before chunk CRLF
            b"4\r\nWikiXX",                 // wrong terminator
            b"4\r\nWiki\r\n5\r\npedia\r\n", // EOF before final chunk
            b"zz\r\n",                      // non-hex size
            b"\r\n",                        // empty size line
        ] {
            let mut r = BufReader::new(wire);
            let res = BodyReader::new(&mut r, BodyFraming::Chunked, &Limits::default())
                .unwrap()
                .read_to_vec();
            assert!(
                matches!(res, Err(HttpError::Protocol(_))),
                "{wire:?} → {res:?}"
            );
        }
    }

    #[test]
    fn chunk_limits_enforced_incrementally() {
        let limits = Limits {
            max_chunk_bytes: 16,
            ..Limits::default()
        };
        // Declares a 1 MiB chunk but sends nothing: rejected on the
        // declaration, before any read.
        let wire = b"100000\r\n";
        let mut r = BufReader::new(&wire[..]);
        let res = BodyReader::new(&mut r, BodyFraming::Chunked, &limits)
            .unwrap()
            .read_to_vec();
        assert!(matches!(
            res,
            Err(HttpError::TooLarge {
                what: "chunk",
                limit: 16
            })
        ));

        // Cumulative body cap: many small chunks must trip max_body_bytes.
        let limits = Limits {
            max_body_bytes: 10,
            ..Limits::default()
        };
        let wire = b"6\r\nabcdef\r\n6\r\nghijkl\r\n0\r\n\r\n";
        let mut r = BufReader::new(&wire[..]);
        let res = BodyReader::new(&mut r, BodyFraming::Chunked, &limits)
            .unwrap()
            .read_to_vec();
        assert!(matches!(
            res,
            Err(HttpError::TooLarge {
                what: "body",
                limit: 10
            })
        ));
    }

    #[test]
    fn truncated_length_body_is_a_protocol_error() {
        // Keep-alive poison: a short body must not be misread as complete.
        let wire = b"abc";
        let mut r = BufReader::new(&wire[..]);
        let res = BodyReader::new(&mut r, BodyFraming::Length(10), &Limits::default())
            .unwrap()
            .read_to_vec();
        assert!(matches!(res, Err(HttpError::Protocol(_))), "{res:?}");
    }

    #[test]
    fn read_some_streams_in_bounded_pieces() {
        let payload = vec![7u8; 10_000];
        let mut wire = Vec::new();
        write_framed(
            &mut wire,
            "POST / HTTP/1.1\r\n",
            &[],
            &payload,
            &ChunkPolicy::above(0).chunk_size(1024),
        )
        .unwrap();
        // Skip the head we just wrote (ends with the blank line).
        let body_at = wire.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        let mut r = BufReader::new(&wire[body_at..]);
        let mut reader = BodyReader::new(&mut r, BodyFraming::Chunked, &Limits::default()).unwrap();
        let mut out = Vec::new();
        let mut scratch = [0u8; 300];
        loop {
            let n = reader.read_some(&mut scratch).unwrap();
            if n == 0 {
                break;
            }
            assert!(n <= 300);
            out.extend_from_slice(&scratch[..n]);
        }
        assert_eq!(out, payload);
    }

    #[test]
    fn write_framed_emits_content_length_unchanged_below_threshold() {
        let mut wire = Vec::new();
        write_framed(
            &mut wire,
            "POST /x HTTP/1.1\r\n",
            &hdrs(&[("Content-Length", "3")]),
            b"abc",
            &ChunkPolicy::above(1000),
        )
        .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("Content-Length: 3\r\n"), "{text}");
        assert!(!text.contains("Transfer-Encoding"), "{text}");
        assert!(text.ends_with("\r\n\r\nabc"), "{text}");
    }

    #[test]
    fn write_framed_replaces_length_with_chunked_above_threshold() {
        let mut wire = Vec::new();
        write_framed(
            &mut wire,
            "POST /x HTTP/1.1\r\n",
            &hdrs(&[("Content-Length", "6")]),
            b"abcdef",
            &ChunkPolicy::above(4).chunk_size(4),
        )
        .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(!text.contains("Content-Length"), "{text}");
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");
        assert!(
            text.ends_with("4\r\nabcd\r\n2\r\nef\r\n0\r\n\r\n"),
            "{text}"
        );
    }

    #[test]
    fn chunked_body_resumes_across_arbitrary_byte_boundaries() {
        // Feed a chunked body one byte at a time through NonBlockCursor,
        // snapshotting/rolling back exactly the way the event-driven
        // server does: the decoded body must come out identical no matter
        // where the "socket" ran dry (including mid-size-line and between
        // a chunk's data and its trailing CRLF).
        let payload: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let mut wire = Vec::new();
        write_framed(
            &mut wire,
            "POST / HTTP/1.1\r\n",
            &[],
            &payload,
            &ChunkPolicy::above(0).chunk_size(700),
        )
        .unwrap();
        let body_at = wire.windows(4).position(|w| w == b"\r\n\r\n").unwrap() + 4;
        let wire = &wire[body_at..];

        let limits = Limits::default();
        let mut body = Vec::new();
        let mut state = BodyState::start(BodyFraming::Chunked, &limits).unwrap();
        let mut have = 0usize; // bytes "arrived" so far
        let mut consumed = 0usize;
        let mut scratch = [0u8; 128];
        while !state.is_done() {
            have = (have + 1).min(wire.len());
            let mut cur = NonBlockCursor::new(&wire[consumed..have]);
            loop {
                let snap_pos = cur.pos();
                let snap_state = state;
                let (res, after) = {
                    let mut rdr = BodyReader::resume(&mut cur, state, &limits);
                    let res = rdr.read_some(&mut scratch);
                    let after = rdr.state();
                    (res, after)
                };
                match res {
                    Ok(0) => {
                        state = after;
                        break;
                    }
                    Ok(n) => {
                        state = after;
                        body.extend_from_slice(&scratch[..n]);
                    }
                    Err(HttpError::Timeout(TimeoutKind::Read)) => {
                        // Ran dry mid-token: roll back and wait for more.
                        state = snap_state;
                        cur.set_pos(snap_pos);
                        break;
                    }
                    Err(e) => panic!("unexpected framing error: {e}"),
                }
            }
            consumed += cur.pos();
            assert!(have < wire.len() || state.is_done() || consumed <= have);
        }
        assert_eq!(body, payload);
        assert_eq!(consumed, wire.len(), "decoder consumed the exact framing");
    }

    #[test]
    fn nonblock_cursor_reports_wouldblock_not_eof() {
        let mut cur = NonBlockCursor::new(b"ab");
        let mut buf = [0u8; 8];
        assert_eq!(std::io::Read::read(&mut cur, &mut buf).unwrap(), 2);
        let err = std::io::Read::read(&mut cur, &mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    }

    #[test]
    fn capped_line_read_rejects_newlineless_floods_incrementally() {
        // A 1 MiB newline-less line against a 1 KiB cap: must error without
        // buffering the megabyte (the peak gauge proves the bound held).
        reset_peak_framing_buffer();
        let flood = vec![b'a'; 1024 * 1024];
        let mut r = BufReader::new(&flood[..]);
        let res = read_line_capped(&mut r, 1024, "header");
        assert!(matches!(
            res,
            Err(HttpError::TooLarge { what: "header", .. })
        ));
        assert!(
            peak_framing_buffer() <= 1024 + 2 + 8192,
            "buffered {} bytes against a 1 KiB cap",
            peak_framing_buffer()
        );
    }
}
