//! Event-driven HTTP server.
//!
//! One reactor thread owns *readiness*: every connection is a
//! non-blocking socket registered with an epoll [`Reactor`], driven
//! through an explicit state machine (`Idle → ReadHead → ReadBody →
//! InHandler → Write → Idle`) by readiness events, with read/write/
//! keep-alive deadlines on a [`DeadlineWheel`]. A small fixed [`CpuPool`]
//! owns *computation*: parsed requests are dispatched to it, the handler
//! (and any marshalling it does) runs there, and the completed response
//! is handed back to the event loop over a channel plus a reactor wake.
//!
//! The split is what makes c10k cheap: ten thousand idle keep-alive
//! connections cost one thread and a few bytes of slab state each — their
//! pooled buffers are released back to the [`BufferPool`] while they sit
//! idle — while CPU-bound work stays bounded by the pool size instead of
//! the connection count.

use crate::body::{parse_framing, BodyReader, BodyState, ChunkPolicy, NonBlockCursor};
use crate::faults::{FaultAction, FaultSchedule};
use crate::message::{
    read_request_head, HttpError, Limits, Request, RequestHead, Response, TimeoutKind,
    DEFAULT_IO_TIMEOUT,
};
use crate::metrics::HttpMetrics;
use sbq_runtime::channel::{self, Receiver, Sender};
use sbq_runtime::reactor::{Event, Interest, Token};
use sbq_runtime::{BufferPool, CpuPool, DeadlineWheel, Reactor};
use sbq_telemetry::trace;
use sbq_telemetry::{
    HealthConfig, HealthMonitor, HealthSnapshot, Registry, Span, TraceContext, TraceSpan, Tracer,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Token for the listening socket (connection tokens encode a slot index
/// in the low 32 bits, so they can never collide with this in practice).
const LISTENER_TOKEN: Token = Token(u64::MAX - 1);
/// Token for the watchdog heartbeat timer on the deadline wheel. The
/// event loop measures how late each heartbeat fires relative to its
/// scheduled deadline — that lag *is* the reactor loop lag, because the
/// only thing that can delay an armed wheel entry is the loop itself
/// being busy (or blocked) between polls.
const HEARTBEAT_TOKEN: Token = Token(u64::MAX - 2);
/// Deadline-wheel resolution: coarse on purpose — connection timeouts are
/// tens of milliseconds and up.
const WHEEL_TICK: Duration = Duration::from_millis(25);
/// Slots on the wheel: `WHEEL_TICK * WHEEL_SLOTS` (~102 s) covers every
/// default timeout within one round.
const WHEEL_SLOTS: usize = 4096;
/// Per-syscall read size into a connection's input buffer.
const READ_CHUNK: usize = 16 * 1024;
/// Per-readiness-event read budget, so one fire-hose connection cannot
/// monopolize the event loop (level-triggered epoll re-reports the rest).
const READ_BUDGET: usize = 256 * 1024;

/// Instantaneous load snapshot handed to an admission hook (see
/// [`ServerConfig::admission`]). All values are read on the event-loop
/// thread, so they are exact at decision time.
#[derive(Debug, Clone, Copy)]
pub struct ServerLoad {
    /// Handler jobs dispatched to the CPU pool and not yet completed.
    pub inflight_jobs: usize,
    /// Size of the CPU pool (the worker_threads setting).
    pub worker_threads: usize,
    /// Connections currently registered with the reactor.
    pub open_conns: usize,
    /// Current runtime health (SLO burn rates, watchdog latch), when the
    /// server's telemetry is enabled — so an admission hook can shed on
    /// burn rate, not just instantaneous queue depth. `None` with
    /// telemetry disabled.
    pub health: Option<HealthSnapshot>,
}

/// An admission decision for one parsed request.
#[derive(Debug)]
pub enum Admission {
    /// Dispatch the request to the handler normally.
    Admit,
    /// Answer with this response *from the event loop* — the request
    /// never reaches the CPU pool (that is the whole point: shedding
    /// must cost nothing when the pool is the saturated resource). The
    /// connection stays keep-alive unless the response or client says
    /// `Connection: close`.
    Respond(Response),
}

/// The decision function inside an [`AdmissionHook`].
type AdmissionFn = dyn Fn(&Request, &ServerLoad) -> Admission + Send + Sync;

/// A shared admission-control hook. Runs on the event-loop thread for
/// every parsed application request (built-in observability endpoints
/// are exempt — operators must be able to see the overload they are
/// being shed by), so it must be fast and must never block.
#[derive(Clone)]
pub struct AdmissionHook(Arc<AdmissionFn>);

impl std::fmt::Debug for AdmissionHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AdmissionHook(..)")
    }
}

/// Server-side transport configuration; construct with
/// [`ServerConfig::default`] and refine with the consuming builder
/// methods.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    worker_threads: usize,
    accept_backlog: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    keep_alive_timeout: Duration,
    keep_alive_max_idle: Option<Duration>,
    limits: Limits,
    faults: FaultSchedule,
    telemetry: Registry,
    chunking: ChunkPolicy,
    pool: BufferPool,
    admission: Option<AdmissionHook>,
    health: HealthConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            worker_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            accept_backlog: 128,
            read_timeout: DEFAULT_IO_TIMEOUT,
            write_timeout: DEFAULT_IO_TIMEOUT,
            keep_alive_timeout: Duration::from_secs(60),
            keep_alive_max_idle: None,
            limits: Limits::default(),
            faults: FaultSchedule::new(),
            telemetry: Registry::default(),
            chunking: ChunkPolicy::disabled(),
            pool: BufferPool::global().clone(),
            admission: None,
            health: HealthConfig::new(),
        }
    }
}

impl ServerConfig {
    /// Size of the CPU pool handlers run on (at least 1). Defaults to the
    /// machine's available parallelism. This no longer bounds how many
    /// connections the server can hold open — only how many handlers run
    /// at once.
    pub fn worker_threads(mut self, n: usize) -> ServerConfig {
        self.worker_threads = n.max(1);
        self
    }

    /// The configured CPU-pool size (what [`ServerLoad::worker_threads`]
    /// reports to admission hooks).
    pub fn worker_pool_size(&self) -> usize {
        self.worker_threads
    }

    /// Cap on connections accepted per readiness event (the rest stay in
    /// the kernel backlog until the next loop turn — that is the accept
    /// backpressure).
    pub fn accept_backlog(mut self, n: usize) -> ServerConfig {
        self.accept_backlog = n.max(1);
        self
    }

    /// Deadline for progress while a request is arriving; a stalled
    /// sender gets `408` and the connection closed.
    pub fn read_timeout(mut self, d: Duration) -> ServerConfig {
        self.read_timeout = d;
        self
    }

    /// Deadline for progress while a response is being written.
    pub fn write_timeout(mut self, d: Duration) -> ServerConfig {
        self.write_timeout = d;
        self
    }

    /// How long a keep-alive connection may sit with no request before the
    /// server closes it.
    pub fn keep_alive_timeout(mut self, d: Duration) -> ServerConfig {
        self.keep_alive_timeout = d;
        self
    }

    /// Optional tighter cap on idle keep-alive connections: when set, an
    /// idle connection is reaped after `min(keep_alive_timeout, d)`.
    /// Lets a server under fd pressure shed parked connections faster
    /// than the protocol-level keep-alive allows.
    pub fn keep_alive_max_idle(mut self, d: Duration) -> ServerConfig {
        self.keep_alive_max_idle = Some(d);
        self
    }

    /// Cap on request-line plus header bytes; beyond it the request gets
    /// `413`.
    pub fn max_header_bytes(mut self, n: usize) -> ServerConfig {
        self.limits.max_header_bytes = n;
        self
    }

    /// Cap on declared body length; beyond it the request gets `413`
    /// without the body being read.
    pub fn max_body_bytes(mut self, n: usize) -> ServerConfig {
        self.limits.max_body_bytes = n;
        self
    }

    /// Replaces all size limits at once.
    pub fn limits(mut self, limits: Limits) -> ServerConfig {
        self.limits = limits;
        self
    }

    /// Opt in to `Transfer-Encoding: chunked` for response bodies of at
    /// least `threshold` bytes (off by default). Chunked *requests* are
    /// always accepted regardless of this setting.
    pub fn chunk_threshold(mut self, threshold: usize) -> ServerConfig {
        self.chunking = ChunkPolicy::above(threshold).chunk_size(self.chunking.chunk_bytes());
        self
    }

    /// Chunk size used when response chunking applies (default
    /// [`ChunkPolicy::DEFAULT_CHUNK_SIZE`]).
    pub fn chunk_size(mut self, n: usize) -> ServerConfig {
        self.chunking = self.chunking.chunk_size(n);
        self
    }

    /// Installs a response-fault schedule (tests only in spirit, but safe
    /// in production: the default schedule is empty).
    pub fn faults(mut self, faults: FaultSchedule) -> ServerConfig {
        self.faults = faults;
        self
    }

    /// Telemetry registry the server records into and exposes over
    /// `GET /metrics` (text) and `GET /metrics.json`. Defaults to the
    /// process-wide [`Registry::global`]; pass [`Registry::disabled`] to
    /// turn instrumentation off.
    pub fn telemetry(mut self, registry: Registry) -> ServerConfig {
        self.telemetry = registry;
        self
    }

    /// The registry this configuration records into.
    pub fn telemetry_registry(&self) -> &Registry {
        &self.telemetry
    }

    /// Installs an admission-control hook, consulted on the event-loop
    /// thread for every parsed application request *before* it is
    /// dispatched to the CPU pool. Returning [`Admission::Respond`]
    /// answers immediately from the event loop (counted in
    /// `http.admission.shed`) without consuming a pool worker; built-in
    /// `/metrics` and `/trace` endpoints are never subject to
    /// admission. The hook must be fast and non-blocking — it runs on
    /// the thread that multiplexes every connection.
    pub fn admission<F>(mut self, hook: F) -> ServerConfig
    where
        F: Fn(&Request, &ServerLoad) -> Admission + Send + Sync + 'static,
    {
        self.admission = Some(AdmissionHook(Arc::new(hook)));
        self
    }

    /// Runtime health configuration: SLO targets, reactor loop-lag
    /// budget, heartbeat period, `/proc` sampling. The health subsystem
    /// (watchdog, `/healthz`, `/statusz`, burn-rate gauges) is active
    /// whenever the telemetry registry is enabled; this tunes it.
    pub fn health(mut self, health: HealthConfig) -> ServerConfig {
        self.health = health;
        self
    }

    /// The configured health settings.
    pub fn health_config(&self) -> &HealthConfig {
        &self.health
    }

    /// Buffer pool request bodies are read into and recycled through.
    /// Defaults to the process-wide [`BufferPool::global`]; supply a
    /// dedicated pool to isolate (or observe) one server's traffic.
    pub fn buffer_pool(mut self, pool: BufferPool) -> ServerConfig {
        self.pool = pool;
        self
    }

    /// The buffer pool this configuration serves bodies from.
    pub fn buffer_pool_ref(&self) -> &BufferPool {
        &self.pool
    }
}

/// A running HTTP server. The handler runs on CPU-pool workers; it must
/// be `Send + Sync` because requests are concurrent.
pub struct HttpServer;

impl HttpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) with the default
    /// [`ServerConfig`].
    pub fn bind<H>(addr: SocketAddr, handler: H) -> std::io::Result<ServerHandle>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        Self::bind_with(addr, ServerConfig::default(), handler)
    }

    /// Binds to `addr` and serves with the given configuration until the
    /// returned handle is dropped or shut down.
    pub fn bind_with<H>(
        addr: SocketAddr,
        config: ServerConfig,
        handler: H,
    ) -> std::io::Result<ServerHandle>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let metrics = HttpMetrics::new(&config.telemetry);
        let tracer = config.telemetry.tracer();
        if config.telemetry.is_enabled() {
            // First observer wins; later binds against an already-observed
            // pool are no-ops, so the global pool reports to the first
            // enabled registry it meets.
            config
                .pool
                .set_observer(sbq_telemetry::pool_observer(&config.telemetry));
        }
        let cpu_threads = config.worker_threads;
        // The monitor is inert (no sampler thread, no SLO ring) when the
        // registry is disabled; otherwise it starts watching immediately.
        let health = Arc::new(HealthMonitor::new(config.health, &config.telemetry));
        let ctx = Arc::new(Ctx {
            handler: Box::new(handler),
            metrics,
            tracer,
            health,
            config,
            stop: Arc::clone(&stop),
            requests: AtomicU64::new(0),
            active: AtomicU64::new(0),
        });
        let reactor = Arc::new(Reactor::new()?);
        reactor.register(&listener, LISTENER_TOKEN, Interest::READABLE)?;
        let (done_tx, done_rx) = channel::unbounded();
        let ev = EventLoop {
            ctx: Arc::clone(&ctx),
            reactor: Arc::clone(&reactor),
            listener: Some(listener),
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            wheel: DeadlineWheel::new(WHEEL_TICK, WHEEL_SLOTS),
            pool: CpuPool::new(cpu_threads),
            done_tx,
            done_rx,
            connections: Arc::clone(&connections),
            scratch: vec![0u8; 64 * 1024],
            inflight_jobs: 0,
            open_conns: 0,
            io_ops: 0,
            just_intr: false,
            stopping: false,
            heartbeat_at: None,
        };
        let event_loop = std::thread::Builder::new()
            .name("sbq-http-reactor".to_string())
            .spawn(move || ev.run())?;
        Ok(ServerHandle {
            addr: local,
            stop,
            reactor,
            event_loop: Some(event_loop),
            connections,
            ctx,
        })
    }
}

struct Ctx {
    handler: Box<dyn Fn(&Request) -> Response + Send + Sync>,
    metrics: HttpMetrics,
    tracer: Tracer,
    health: Arc<HealthMonitor>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    requests: AtomicU64,
    active: AtomicU64,
}

/// Where a connection's state machine stands. Exactly one request is in
/// flight per connection at a time: while `InHandler`/`Write`, read
/// interest is off, so pipelined bytes wait in `inbuf`/the kernel.
///
/// The variants deliberately differ in size: each holds exactly the
/// working set the connection needs in that state, and there is one
/// `ConnState` per connection slot — boxing the large variants would
/// trade a pool-recycled inline buffer for a per-request allocation.
#[allow(clippy::large_enum_variant)]
enum ConnState {
    /// Parked between keep-alive requests, buffers released.
    Idle,
    /// Accumulating request-line + headers into `inbuf`.
    ReadHead,
    /// Head parsed; streaming the body out of `inbuf` as it arrives.
    ReadBody {
        head: RequestHead,
        chunked: bool,
        bstate: BodyState,
        body: Vec<u8>,
    },
    /// Dispatched to the CPU pool; waiting for the completion message.
    InHandler,
    /// Writing the response as the socket accepts it.
    Write(WriteJob),
}

struct Conn {
    stream: TcpStream,
    token: Token,
    state: ConnState,
    interest: Interest,
    /// Buffered-but-unparsed input (pooled; released while idle).
    inbuf: Vec<u8>,
    /// Response-head scratch, kept on the connection between requests
    /// (pooled; released while idle). Keeping it here instead of doing a
    /// pool round-trip per response matters for determinism as much as
    /// speed: the pool's steady state stays balanced without relying on
    /// the event loop's post-write `put` racing the client's next `get`.
    outbuf: Vec<u8>,
    /// Scan hint into `inbuf` for the head-end search.
    scan: usize,
    /// First byte of the current request, for the read histogram/span.
    read_start: Option<Instant>,
    /// Generation for lazy deadline cancellation on the wheel.
    timer_gen: u64,
    idle: bool,
    registered: bool,
    /// Socket errored while a handler was in flight: discard its
    /// completion and close.
    dead: bool,
}

/// A response mid-write: head bytes, then the body either plain or framed
/// into chunks on the fly (so no second body-sized buffer ever exists).
struct WriteJob {
    head: Vec<u8>,
    head_pos: usize,
    body: Vec<u8>,
    bw: BodyWrite,
    keep: bool,
    /// Held open until the last byte is written, so the request span
    /// covers the write phase like the old blocking server's did.
    req_span: Option<TraceSpan>,
    sctx: Option<TraceContext>,
    started: Instant,
}

enum BodyWrite {
    Plain {
        pos: usize,
    },
    Chunked {
        pos: usize,
        chunk_rem: usize,
        frame: Vec<u8>,
        frame_pos: usize,
        first: bool,
        done: bool,
        chunk_size: usize,
    },
}

impl WriteJob {
    /// The next contiguous byte range to write, or `None` when complete.
    /// Chunk frames are synthesized lazily; each frame after the first
    /// leads with the previous chunk's terminating CRLF.
    fn next_slice(&mut self) -> Option<&[u8]> {
        if self.head_pos < self.head.len() {
            return Some(&self.head[self.head_pos..]);
        }
        if let BodyWrite::Chunked {
            pos,
            chunk_rem,
            frame,
            frame_pos,
            first,
            done,
            chunk_size,
        } = &mut self.bw
        {
            if *frame_pos >= frame.len() && *chunk_rem == 0 && !*done {
                let lead = if *first { "" } else { "\r\n" };
                let n = (self.body.len() - *pos).min((*chunk_size).max(1));
                *frame_pos = 0;
                if n == 0 {
                    *frame = format!("{lead}0\r\n\r\n").into_bytes();
                    *done = true;
                } else {
                    *frame = format!("{lead}{n:x}\r\n").into_bytes();
                    *chunk_rem = n;
                    *first = false;
                }
            }
        }
        match &self.bw {
            BodyWrite::Plain { pos } => {
                if *pos < self.body.len() {
                    Some(&self.body[*pos..])
                } else {
                    None
                }
            }
            BodyWrite::Chunked {
                pos,
                chunk_rem,
                frame,
                frame_pos,
                ..
            } => {
                if *frame_pos < frame.len() {
                    Some(&frame[*frame_pos..])
                } else if *chunk_rem > 0 {
                    Some(&self.body[*pos..*pos + *chunk_rem])
                } else {
                    None
                }
            }
        }
    }

    /// Records `w` bytes written from the slice `next_slice` returned
    /// (always within a single segment).
    fn advance(&mut self, mut w: usize) {
        if self.head_pos < self.head.len() {
            let take = w.min(self.head.len() - self.head_pos);
            self.head_pos += take;
            w -= take;
            if w == 0 {
                return;
            }
        }
        match &mut self.bw {
            BodyWrite::Plain { pos } => *pos += w,
            BodyWrite::Chunked {
                pos,
                chunk_rem,
                frame,
                frame_pos,
                ..
            } => {
                if *frame_pos < frame.len() {
                    let take = w.min(frame.len() - *frame_pos);
                    *frame_pos += take;
                    w -= take;
                }
                *pos += w;
                *chunk_rem -= w;
            }
        }
    }
}

/// Everything the CPU-pool job needs to run one request and report back.
struct JobMeta {
    slot: usize,
    token: Token,
    idx: u64,
    rid: String,
    close_requested: bool,
    fault: Option<FaultAction>,
    dispatched: Instant,
    /// First byte of the request — the start of the end-to-end latency
    /// the SLO engine and `http.request_us` exemplars observe.
    read_start: Instant,
    req_span: TraceSpan,
    sctx: TraceContext,
}

/// What a finished handler hands back to the event loop.
struct Completion {
    slot: usize,
    token: Token,
    resp: Response,
    req_span: Option<TraceSpan>,
    sctx: Option<TraceContext>,
    close: bool,
    fault: Option<FaultAction>,
}

fn conn_token(slot: usize, gen: u32) -> Token {
    Token(((gen as u64) << 32) | slot as u64)
}

fn token_slot(t: Token) -> usize {
    (t.0 & 0xffff_ffff) as usize
}

/// Index one past the blank line ending the head, if present.
fn find_head_end(buf: &[u8], from: usize) -> Option<usize> {
    let mut i = from.saturating_sub(3);
    while i < buf.len() {
        if buf[i] == b'\n' {
            if buf[i + 1..].starts_with(b"\r\n") {
                return Some(i + 3);
            }
            if buf.get(i + 1) == Some(&b'\n') {
                return Some(i + 2);
            }
        }
        i += 1;
    }
    None
}

/// Fault-schedule `EINTR` injection: every `period`-th shaped I/O op
/// fails with a simulated interrupt (never two in a row, so period 1
/// cannot live-lock the retry loops it exists to exercise).
fn inject_eintr(ops: &mut u64, last: &mut bool, period: Option<u64>) -> bool {
    let Some(p) = period else { return false };
    *ops += 1;
    if !*last && ops.is_multiple_of(p) {
        *last = true;
        return true;
    }
    *last = false;
    false
}

fn set_interest(reactor: &Reactor, conn: &mut Conn, want: Interest) {
    if conn.interest != want
        && conn.registered
        && reactor.reregister(&conn.stream, conn.token, want).is_ok()
    {
        conn.interest = want;
    }
}

fn arm_deadline(wheel: &mut DeadlineWheel, conn: &mut Conn, d: Duration) {
    conn.timer_gen += 1;
    wheel.arm(conn.token, conn.timer_gen, Instant::now() + d);
}

/// What `process_input` decided the connection needs next.
enum Act {
    Wait,
    Close,
    Fail(HttpError),
    Dispatch,
}

struct EventLoop {
    ctx: Arc<Ctx>,
    reactor: Arc<Reactor>,
    listener: Option<TcpListener>,
    conns: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    wheel: DeadlineWheel,
    pool: CpuPool,
    done_tx: Sender<Completion>,
    done_rx: Receiver<Completion>,
    connections: Arc<AtomicU64>,
    scratch: Vec<u8>,
    inflight_jobs: usize,
    open_conns: usize,
    io_ops: u64,
    just_intr: bool,
    stopping: bool,
    /// When the armed watchdog heartbeat is due; lag is measured against
    /// this at fire time.
    heartbeat_at: Option<Instant>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::with_capacity(256);
        let mut expired: Vec<(Token, u64)> = Vec::new();
        if self.ctx.health.is_enabled() {
            self.arm_heartbeat();
        }
        loop {
            if self.ctx.stop.load(Ordering::SeqCst) && !self.stopping {
                self.begin_shutdown();
            }
            if self.stopping && self.open_conns == 0 && self.inflight_jobs == 0 {
                break;
            }
            let timeout = self.wheel.next_timeout(Instant::now());
            let summary = match self.reactor.poll(&mut events, timeout) {
                Ok(s) => s,
                Err(_) => continue,
            };
            if summary.woken {
                self.ctx.metrics.reactor_wakeups.inc();
            }
            if summary.events > 0 {
                self.ctx.metrics.reactor_events.add(summary.events as u64);
            }
            for &ev in &events {
                if ev.token == LISTENER_TOKEN {
                    self.accept_burst();
                } else {
                    self.on_conn_event(ev);
                }
            }
            while let Ok(done) = self.done_rx.try_recv() {
                self.on_completion(done);
            }
            expired.clear();
            self.wheel.expire_into(Instant::now(), &mut expired);
            for &(token, tgen) in &expired {
                self.on_deadline(token, tgen);
            }
        }
        // Loop exit implies no live connections and no in-flight jobs;
        // dropping the pool joins its workers.
        self.pool.shutdown();
    }

    fn begin_shutdown(&mut self) {
        self.stopping = true;
        if let Some(l) = self.listener.take() {
            let _ = self.reactor.deregister(&l);
        }
        // Close idle and still-reading connections immediately; handlers
        // in flight and responses mid-write drain (their keep-alive is
        // forced off at write completion).
        let close_now: Vec<usize> = self
            .conns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                c.as_ref().and_then(|c| match c.state {
                    ConnState::Idle | ConnState::ReadHead | ConnState::ReadBody { .. } => Some(i),
                    _ => None,
                })
            })
            .collect();
        for slot in close_now {
            self.close_conn(slot);
        }
    }

    fn accept_burst(&mut self) {
        if self.stopping {
            return;
        }
        for _ in 0..self.ctx.config.accept_backlog {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => self.open_conn(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn open_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let slot = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.gens.push(0);
            self.conns.len() - 1
        });
        let token = conn_token(slot, self.gens[slot]);
        if self
            .reactor
            .register(&stream, token, Interest::READABLE)
            .is_err()
        {
            self.free.push(slot);
            return;
        }
        self.connections.fetch_add(1, Ordering::SeqCst);
        self.ctx.active.fetch_add(1, Ordering::SeqCst);
        let m = &self.ctx.metrics;
        m.active.inc();
        m.accepted.inc();
        m.open.inc();
        self.open_conns += 1;
        self.conns[slot] = Some(Conn {
            stream,
            token,
            state: ConnState::ReadHead, // placeholder; enter_idle parks it
            interest: Interest::READABLE,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            scan: 0,
            read_start: None,
            timer_gen: 0,
            idle: false,
            registered: true,
            dead: false,
        });
        self.enter_idle(slot);
    }

    fn close_conn(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::take) else {
            return;
        };
        if conn.registered {
            let _ = self.reactor.deregister(&conn.stream);
        }
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push(slot);
        self.open_conns -= 1;
        self.ctx.active.fetch_sub(1, Ordering::SeqCst);
        let m = &self.ctx.metrics;
        m.active.dec();
        m.open.dec();
        m.closed.inc();
        if conn.idle {
            m.idle.dec();
        }
        let pool = &self.ctx.config.pool;
        pool.put(conn.inbuf);
        pool.put(conn.outbuf);
        match conn.state {
            ConnState::ReadBody { body, .. } => pool.put(body),
            ConnState::Write(job) => {
                pool.put(job.head);
                pool.put(job.body);
            }
            _ => {}
        }
    }

    /// Parks a connection between requests: buffers released, read
    /// interest on, idle deadline armed.
    fn enter_idle(&mut self, slot: usize) {
        let idle_to = match self.ctx.config.keep_alive_max_idle {
            Some(m) => self.ctx.config.keep_alive_timeout.min(m),
            None => self.ctx.config.keep_alive_timeout,
        };
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        self.ctx.config.pool.put(std::mem::take(&mut conn.inbuf));
        self.ctx.config.pool.put(std::mem::take(&mut conn.outbuf));
        conn.scan = 0;
        conn.state = ConnState::Idle;
        conn.read_start = None;
        if !conn.idle {
            conn.idle = true;
            self.ctx.metrics.idle.inc();
        }
        arm_deadline(&mut self.wheel, conn, idle_to);
        set_interest(&self.reactor, conn, Interest::READABLE);
    }

    fn on_conn_event(&mut self, ev: Event) {
        let slot = token_slot(ev.token);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.token != ev.token {
            return; // stale event for a recycled slot
        }
        match conn.state {
            ConnState::InHandler => {
                if ev.error {
                    // Cannot close yet — a completion is in flight for
                    // this slot. Deregister (level-triggered errors would
                    // re-fire every poll) and discard on completion.
                    conn.dead = true;
                    if conn.registered {
                        let _ = self.reactor.deregister(&conn.stream);
                        conn.registered = false;
                    }
                }
            }
            ConnState::Write(_) => {
                if ev.error {
                    self.close_conn(slot);
                } else if ev.writable {
                    self.drive_write(slot);
                }
            }
            ConnState::Idle | ConnState::ReadHead | ConnState::ReadBody { .. } => {
                if ev.error {
                    self.close_conn(slot);
                } else if ev.readable || ev.rdhup {
                    self.drive_read(slot);
                }
            }
        }
    }

    /// Arms (or re-arms) the watchdog heartbeat one period out.
    fn arm_heartbeat(&mut self) {
        let next = Instant::now() + self.ctx.health.config().heartbeat_period_value();
        self.wheel.arm(HEARTBEAT_TOKEN, 0, next);
        self.heartbeat_at = Some(next);
    }

    fn on_deadline(&mut self, token: Token, tgen: u64) {
        if token == HEARTBEAT_TOKEN {
            // Scheduled-vs-actual fire time: anything past the wheel's
            // own tick resolution is time the loop spent away from
            // `poll` — a blocking handler run on this thread, a storm of
            // ready events, or the process being descheduled.
            let lag = self
                .heartbeat_at
                .map(|at| Instant::now().saturating_duration_since(at))
                .unwrap_or_default();
            self.ctx.health.heartbeat(lag);
            self.arm_heartbeat();
            return;
        }
        let slot = token_slot(token);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        if conn.token != token || conn.timer_gen != tgen {
            return; // lazily cancelled
        }
        self.ctx.metrics.reactor_timeouts.inc();
        match conn.state {
            ConnState::Idle => self.close_conn(slot),
            ConnState::ReadHead | ConnState::ReadBody { .. } => {
                self.fail(slot, HttpError::Timeout(TimeoutKind::Read))
            }
            ConnState::Write(_) => self.close_conn(slot),
            ConnState::InHandler => {} // no deadline while in a handler
        }
    }

    /// Reads whatever the socket has (bounded by the event budget), then
    /// advances the parse state machine over the buffered bytes.
    ///
    /// Reads land in `inbuf`'s spare capacity only — when it fills, the
    /// bytes are parsed out (which drains them) rather than the buffer
    /// grown, so a steady-state connection keeps one pool-classed buffer
    /// for its whole life. Growth happens only when the parser cannot
    /// consume anything, i.e. a request head larger than one buffer.
    fn drive_read(&mut self, slot: usize) {
        let read_cap = self
            .ctx
            .config
            .faults
            .read_cap()
            .unwrap_or(READ_CHUNK)
            .min(READ_CHUNK);
        let period = self.ctx.config.faults.interrupt_period();
        let mut total = 0usize;
        let mut eof = false;
        loop {
            enum Stop {
                WouldBlock,
                Full,
                Budget,
                Broken,
            }
            let mut round = 0usize;
            let stop = {
                let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                    return;
                };
                if conn.inbuf.capacity() == 0 {
                    conn.inbuf = self.ctx.config.pool.get(READ_CHUNK);
                    conn.inbuf.clear();
                }
                loop {
                    if total >= READ_BUDGET {
                        break Stop::Budget;
                    }
                    let old = conn.inbuf.len();
                    let space = conn.inbuf.capacity() - old;
                    if space == 0 {
                        break Stop::Full;
                    }
                    if inject_eintr(&mut self.io_ops, &mut self.just_intr, period) {
                        continue; // simulated EINTR: retry the same read
                    }
                    conn.inbuf.resize(old + read_cap.min(space), 0);
                    let mut src = &conn.stream;
                    match src.read(&mut conn.inbuf[old..]) {
                        Ok(0) => {
                            conn.inbuf.truncate(old);
                            eof = true;
                            break Stop::WouldBlock;
                        }
                        Ok(n) => {
                            conn.inbuf.truncate(old + n);
                            total += n;
                            round += n;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            conn.inbuf.truncate(old);
                            break Stop::WouldBlock;
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                            conn.inbuf.truncate(old);
                            continue;
                        }
                        Err(_) => {
                            conn.inbuf.truncate(old);
                            break Stop::Broken;
                        }
                    }
                }
            };
            if matches!(stop, Stop::Broken) {
                self.close_conn(slot);
                return;
            }
            if round > 0 || eof {
                self.process_input(slot, eof);
            }
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if !matches!(
                conn.state,
                ConnState::Idle | ConnState::ReadHead | ConnState::ReadBody { .. }
            ) {
                break; // dispatched (or writing an error): stop reading
            }
            match stop {
                Stop::WouldBlock | Stop::Budget => break,
                Stop::Full => {
                    if conn.inbuf.len() == conn.inbuf.capacity() {
                        // Parsing freed nothing (a head spanning more
                        // than one buffer): grow and keep reading. The
                        // incremental header cap bounds this.
                        conn.inbuf.reserve(READ_CHUNK);
                    }
                }
                Stop::Broken => unreachable!(),
            }
        }
        // Fresh bytes arrived: push the read deadline out.
        if total > 0 {
            let read_to = self.ctx.config.read_timeout;
            if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                if matches!(conn.state, ConnState::ReadHead | ConnState::ReadBody { .. }) {
                    arm_deadline(&mut self.wheel, conn, read_to);
                }
            }
        }
    }

    /// Advances Idle/ReadHead/ReadBody over the bytes buffered in
    /// `inbuf`. `eof` means the peer will send nothing further.
    fn process_input(&mut self, slot: usize, eof: bool) {
        let ctx = Arc::clone(&self.ctx);
        let limits = ctx.config.limits;
        let act = loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            match &mut conn.state {
                ConnState::Idle => {
                    if conn.inbuf.is_empty() {
                        if eof {
                            break Act::Close; // clean keep-alive close
                        }
                        break Act::Wait;
                    }
                    if conn.idle {
                        conn.idle = false;
                        ctx.metrics.idle.dec();
                    }
                    conn.state = ConnState::ReadHead;
                    conn.read_start = Some(Instant::now());
                    arm_deadline(&mut self.wheel, conn, ctx.config.read_timeout);
                }
                ConnState::ReadHead => {
                    match find_head_end(&conn.inbuf, conn.scan) {
                        Some(hend) => {
                            conn.scan = 0;
                            let head = {
                                let mut cur = NonBlockCursor::new(&conn.inbuf[..hend]);
                                read_request_head(&mut cur, &limits)
                            };
                            match head {
                                Ok(Some(head)) => {
                                    conn.inbuf.drain(..hend);
                                    match parse_framing(&head.headers)
                                        .and_then(|f| BodyState::start(f, &limits).map(|s| (f, s)))
                                    {
                                        Ok((framing, bstate)) => {
                                            let chunked = matches!(
                                                framing,
                                                crate::body::BodyFraming::Chunked
                                            );
                                            let hint = match framing {
                                                crate::body::BodyFraming::Length(n) => {
                                                    (n as usize).clamp(1, 1024 * 1024)
                                                }
                                                crate::body::BodyFraming::Chunked => READ_CHUNK,
                                            };
                                            let mut body = ctx.config.pool.get(hint);
                                            body.clear();
                                            conn.state = ConnState::ReadBody {
                                                head,
                                                chunked,
                                                bstate,
                                                body,
                                            };
                                        }
                                        Err(e) => break Act::Fail(e),
                                    }
                                }
                                Ok(None) => break Act::Close, // unreachable: head is complete
                                Err(e) => break Act::Fail(e),
                            }
                        }
                        None => {
                            // Incremental cap: reject a floods-without-
                            // blank-line head before buffering past it.
                            if conn.inbuf.len() > limits.max_header_bytes + 4 {
                                break Act::Fail(HttpError::TooLarge {
                                    what: "header",
                                    limit: limits.max_header_bytes,
                                });
                            }
                            if eof {
                                if conn.inbuf.is_empty() {
                                    break Act::Close;
                                }
                                break Act::Fail(HttpError::Protocol(
                                    "connection closed mid request head".into(),
                                ));
                            }
                            conn.scan = conn.inbuf.len();
                            break Act::Wait;
                        }
                    }
                }
                ConnState::ReadBody { bstate, body, .. } => {
                    let mut complete = bstate.is_done();
                    let mut fail: Option<HttpError> = None;
                    let consumed = {
                        let mut cur = NonBlockCursor::new(&conn.inbuf);
                        while !complete {
                            let snap_pos = cur.pos();
                            let snap_state = *bstate;
                            let (res, after) = {
                                let mut rdr = BodyReader::resume(&mut cur, *bstate, &limits);
                                let res = rdr.read_some(&mut self.scratch);
                                (res, rdr.state())
                            };
                            match res {
                                Ok(0) => {
                                    *bstate = after;
                                    complete = true;
                                }
                                Ok(n) => {
                                    *bstate = after;
                                    body.extend_from_slice(&self.scratch[..n]);
                                }
                                Err(HttpError::Timeout(TimeoutKind::Read)) => {
                                    // Ran dry mid-token: roll back to the
                                    // last clean boundary and wait.
                                    *bstate = snap_state;
                                    cur.set_pos(snap_pos);
                                    break;
                                }
                                Err(e) => {
                                    fail = Some(e);
                                    break;
                                }
                            }
                        }
                        cur.pos()
                    };
                    conn.inbuf.drain(..consumed);
                    if let Some(e) = fail {
                        break Act::Fail(e);
                    }
                    if complete {
                        break Act::Dispatch;
                    }
                    if eof {
                        break Act::Fail(HttpError::Protocol("body truncated by peer".into()));
                    }
                    break Act::Wait;
                }
                ConnState::InHandler | ConnState::Write(_) => break Act::Wait,
            }
        };
        match act {
            Act::Wait => {}
            Act::Close => self.close_conn(slot),
            Act::Fail(e) => self.fail(slot, e),
            Act::Dispatch => self.dispatch(slot),
        }
    }

    /// Hands a fully parsed request to the CPU pool and parks the
    /// connection in `InHandler`.
    fn dispatch(&mut self, slot: usize) {
        let ctx = Arc::clone(&self.ctx);
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let ConnState::ReadBody {
            head,
            chunked,
            body,
            ..
        } = std::mem::replace(&mut conn.state, ConnState::InHandler)
        else {
            return;
        };
        conn.timer_gen += 1; // cancel the read deadline
        let token = conn.token;
        let read_start = conn.read_start.take().unwrap_or_else(Instant::now);
        set_interest(&self.reactor, conn, Interest::NONE);
        if conn.outbuf.capacity() == 0 {
            // Acquire the response-head scratch now, not at completion:
            // between the job's body recycle and the client reading the
            // response, the pool must see no competing `get` — a client
            // that turns around instantly reuses that exact buffer.
            conn.outbuf = self.ctx.config.pool.get(256);
        }
        let req = Request {
            method: head.method,
            path: head.path,
            headers: head.headers,
            body,
        };
        if chunked {
            ctx.metrics.chunked_rx.inc();
        }
        let close_requested = req
            .header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false);
        let idx = ctx.requests.fetch_add(1, Ordering::SeqCst);
        ctx.metrics.read.record_duration(read_start.elapsed());
        let rid = request_id(&req, idx);
        if let Some(d) = ctx.config.faults.stall_for(idx) {
            // Deliberate reactor-thread stall (tests): hold the event
            // loop hostage the way a handler mistakenly run here would,
            // so the watchdog's loop-lag measurement can be exercised.
            std::thread::sleep(d);
        }
        // Admission control: decided here on the event loop, before the
        // request costs a CPU-pool slot — under overload the pool is the
        // saturated resource, so a shed that queued behind it would be
        // pointless. Built-in observability endpoints are exempt.
        if let Some(hook) = &ctx.config.admission {
            if !is_builtin_path(&req) {
                let load = ServerLoad {
                    inflight_jobs: self.inflight_jobs,
                    worker_threads: ctx.config.worker_threads,
                    open_conns: self.open_conns,
                    health: ctx.health.is_enabled().then(|| ctx.health.snapshot()),
                };
                if let Admission::Respond(mut resp) = (hook.0)(&req, &load) {
                    let mut req = req;
                    ctx.metrics.shed.inc();
                    ctx.metrics.method(&req.method);
                    ctx.metrics.status(resp.status);
                    resp.headers.push(("X-Request-Id".to_string(), rid));
                    ctx.config.pool.put(std::mem::take(&mut req.body));
                    let keep = !(close_requested || self.stopping);
                    if !keep {
                        resp.headers
                            .push(("Connection".to_string(), "close".to_string()));
                    }
                    let outbuf = self.conns[slot]
                        .as_mut()
                        .map(|conn| std::mem::take(&mut conn.outbuf))
                        .unwrap_or_default();
                    let head = build_head(&ctx.config.pool, outbuf, &resp, false);
                    self.queue_write(
                        slot,
                        WriteJob {
                            head,
                            head_pos: 0,
                            body: std::mem::take(&mut resp.body),
                            bw: BodyWrite::Plain { pos: 0 },
                            keep,
                            req_span: None,
                            sctx: None,
                            started: Instant::now(),
                        },
                    );
                    return;
                }
            }
        }
        // A malformed or absent X-SBQ-Trace is simply "no caller context":
        // the request is served normally, the server span becomes a root.
        let mut req_span = match req.trace_context() {
            Some(caller) => ctx
                .tracer
                .child_span_at("server.request", &caller, read_start),
            None => ctx.tracer.root_span("server.request"),
        };
        req_span.add_tag("req_id", &rid);
        req_span.add_tag("method", &req.method);
        let sctx = req_span.context();
        drop(ctx.tracer.child_span_at("server.read", &sctx, read_start));
        let meta = JobMeta {
            slot,
            token,
            idx,
            rid,
            close_requested,
            fault: ctx.config.faults.action_for(idx),
            dispatched: Instant::now(),
            read_start,
            req_span,
            sctx,
        };
        self.inflight_jobs += 1;
        let done = self.done_tx.clone();
        let reactor = Arc::clone(&self.reactor);
        if !self
            .pool
            .spawn(move || run_request_job(ctx, req, meta, done, reactor))
        {
            self.inflight_jobs -= 1;
            self.close_conn(slot);
        }
    }

    /// A CPU-pool job finished: stage its response for writing (or apply
    /// its scheduled fault).
    fn on_completion(&mut self, mut c: Completion) {
        self.inflight_jobs -= 1;
        let alive = self
            .conns
            .get(c.slot)
            .and_then(Option::as_ref)
            .is_some_and(|conn| conn.token == c.token);
        if !alive {
            return; // connection died while the handler ran
        }
        if self.conns[c.slot].as_ref().is_some_and(|conn| conn.dead) {
            self.close_conn(c.slot);
            return;
        }
        let policy = &self.ctx.config.chunking;
        match c.fault {
            Some(FaultAction::DropResponse) => {
                self.close_conn(c.slot);
            }
            Some(FaultAction::TruncateResponse(_)) | Some(FaultAction::CloseMidResponse) => {
                // Truncation faults are defined on wire offsets (including
                // mid-chunk offsets), so materialize the framed bytes.
                if policy.applies_to(c.resp.body.len()) {
                    self.ctx.metrics.chunked_tx.inc();
                }
                let mut bytes = c.resp.to_wire_bytes(policy);
                let n = match c.fault {
                    Some(FaultAction::TruncateResponse(n)) => n.min(bytes.len()),
                    _ => bytes.len() / 2,
                };
                bytes.truncate(n);
                self.queue_write(
                    c.slot,
                    WriteJob {
                        head: bytes,
                        head_pos: 0,
                        body: Vec::new(),
                        bw: BodyWrite::Plain { pos: 0 },
                        keep: false,
                        req_span: c.req_span,
                        sctx: c.sctx,
                        started: Instant::now(),
                    },
                );
            }
            // Delays were applied in the job; anything else writes intact.
            _ => {
                let chunked = policy.applies_to(c.resp.body.len());
                if chunked {
                    self.ctx.metrics.chunked_tx.inc();
                }
                let chunk_size = policy.chunk_bytes();
                let outbuf = self.conns[c.slot]
                    .as_mut()
                    .map(|conn| std::mem::take(&mut conn.outbuf))
                    .unwrap_or_default();
                let head = build_head(&self.ctx.config.pool, outbuf, &c.resp, chunked);
                let body = std::mem::take(&mut c.resp.body);
                let bw = if chunked {
                    BodyWrite::Chunked {
                        pos: 0,
                        chunk_rem: 0,
                        frame: Vec::new(),
                        frame_pos: 0,
                        first: true,
                        done: false,
                        chunk_size,
                    }
                } else {
                    BodyWrite::Plain { pos: 0 }
                };
                self.queue_write(
                    c.slot,
                    WriteJob {
                        head,
                        head_pos: 0,
                        body,
                        bw,
                        keep: !(c.close || self.stopping),
                        req_span: c.req_span,
                        sctx: c.sctx,
                        started: Instant::now(),
                    },
                );
            }
        }
    }

    /// Best-effort error reply before closing: `413` for size-limit
    /// violations, `408` for a stalled sender, `400` for anything
    /// malformed. Even these carry an `X-Request-Id` (minted — the
    /// request never parsed, so there is no client id to echo).
    fn fail(&mut self, slot: usize, e: HttpError) {
        let idx = self.ctx.requests.fetch_add(1, Ordering::SeqCst);
        let (status, reason) = match &e {
            HttpError::TooLarge { .. } => (413, "Payload Too Large"),
            HttpError::Timeout(_) => (408, "Request Timeout"),
            HttpError::Protocol(_) => (400, "Bad Request"),
            HttpError::Transport(_) => {
                // Socket is gone; nothing to say.
                self.close_conn(slot);
                return;
            }
        };
        let mut resp = Response::with_status(
            status,
            reason,
            "text/plain; charset=utf-8",
            e.to_string().into(),
        );
        resp.headers
            .push(("X-Request-Id".to_string(), idx.to_string()));
        resp.headers
            .push(("Connection".to_string(), "close".to_string()));
        self.queue_write(
            slot,
            WriteJob {
                head: resp.to_bytes(),
                head_pos: 0,
                body: Vec::new(),
                bw: BodyWrite::Plain { pos: 0 },
                keep: false,
                req_span: None,
                sctx: None,
                started: Instant::now(),
            },
        );
    }

    /// Installs a write job on the connection and makes whatever progress
    /// the socket allows right now.
    fn queue_write(&mut self, slot: usize, job: WriteJob) {
        let write_to = self.ctx.config.write_timeout;
        {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            if let ConnState::ReadBody { body, .. } =
                std::mem::replace(&mut conn.state, ConnState::Write(job))
            {
                self.ctx.config.pool.put(body);
            }
            conn.read_start = None;
            arm_deadline(&mut self.wheel, conn, write_to);
        }
        self.drive_write(slot);
    }

    fn drive_write(&mut self, slot: usize) {
        let write_cap = self.ctx.config.faults.write_cap();
        let period = self.ctx.config.faults.interrupt_period();
        let mut finished = false;
        let mut broken = false;
        let mut progressed = false;
        {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            let ConnState::Write(job) = &mut conn.state else {
                return;
            };
            loop {
                let Some(slice) = job.next_slice() else {
                    finished = true;
                    break;
                };
                let n = write_cap.map_or(slice.len(), |c| c.min(slice.len()));
                if inject_eintr(&mut self.io_ops, &mut self.just_intr, period) {
                    continue; // simulated EINTR: retry the same write
                }
                let mut dst = &conn.stream;
                let w = match dst.write(&slice[..n]) {
                    Ok(0) => {
                        broken = true;
                        break;
                    }
                    Ok(w) => w,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        break;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broken = true;
                        break;
                    }
                };
                job.advance(w);
                progressed = true;
            }
            if !finished && !broken {
                set_interest(&self.reactor, conn, Interest::WRITABLE);
            }
        }
        if broken {
            self.close_conn(slot);
            return;
        }
        if finished {
            self.finish_write(slot);
        } else if progressed {
            let write_to = self.ctx.config.write_timeout;
            if let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) {
                arm_deadline(&mut self.wheel, conn, write_to);
            }
        }
    }

    fn finish_write(&mut self, slot: usize) {
        let keep = {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                return;
            };
            let ConnState::Write(job) = std::mem::replace(&mut conn.state, ConnState::Idle) else {
                return;
            };
            conn.timer_gen += 1; // cancel the write deadline
            if let Some(req_span) = job.req_span {
                self.ctx
                    .metrics
                    .write
                    .record_duration(job.started.elapsed());
                if let Some(sctx) = &job.sctx {
                    drop(
                        self.ctx
                            .tracer
                            .child_span_at("server.write", sctx, job.started),
                    );
                }
                drop(req_span); // request span ends with its last byte
            }
            // The head scratch goes back on the connection, not to the
            // pool: the body put below is the only post-write pool
            // traffic, and nothing else consumes its class before the
            // event loop itself does.
            let mut head = job.head;
            head.clear();
            conn.outbuf = head;
            self.ctx.config.pool.put(job.body);
            job.keep && !self.stopping
        };
        if !keep {
            self.close_conn(slot);
            return;
        }
        let leftover = self.conns[slot]
            .as_ref()
            .is_some_and(|c| !c.inbuf.is_empty());
        if leftover {
            // Pipelined bytes already buffered: go straight back to
            // parsing without waiting for another readiness event.
            self.process_input(slot, false);
        } else {
            self.enter_idle(slot);
        }
    }
}

/// Runs one request on a CPU-pool worker and reports the completion back
/// to the event loop.
fn run_request_job(
    ctx: Arc<Ctx>,
    mut req: Request,
    meta: JobMeta,
    done: Sender<Completion>,
    reactor: Arc<Reactor>,
) {
    let JobMeta {
        slot,
        token,
        idx,
        rid,
        close_requested,
        mut fault,
        dispatched,
        read_start,
        mut req_span,
        sctx,
    } = meta;
    let wait = dispatched.elapsed();
    ctx.metrics.queue_wait.record_duration(wait);
    drop(ctx.tracer.child_span_at(
        "server.queue_wait",
        &sctx,
        trace::backdate(Instant::now(), wait),
    ));
    ctx.metrics.method(&req.method);
    let mut close = close_requested;
    let builtin = builtin_response(&ctx, &req);
    let served_builtin = builtin.is_some();
    let mut resp = match builtin {
        Some(resp) => resp,
        None => {
            // A panicking handler must not take a pool worker (and on a
            // small pool, the whole server) down with it: catch it and
            // answer 500, closing this connection only. The request id in
            // the body lets a client report which call blew up.
            ctx.metrics.inflight.inc();
            let handler_span = Span::on(&ctx.metrics.handler);
            let mut handler_tspan = ctx.tracer.child_span("server.handler", &sctx);
            let hctx = handler_tspan.context();
            let enabled = handler_tspan.is_enabled();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // Lower layers (marshalling, QoS) parent their spans on
                // this thread-local context.
                let _guard = enabled.then(|| trace::set_current(hctx));
                (ctx.handler)(&req)
            }));
            if result.is_err() {
                handler_tspan.set_error();
            }
            drop(handler_tspan);
            drop(handler_span);
            ctx.metrics.inflight.dec();
            match result {
                Ok(resp) => resp,
                Err(_) => {
                    ctx.metrics.panics.inc();
                    close = true;
                    let mut resp = Response::with_status(
                        500,
                        "Internal Server Error",
                        "text/plain",
                        format!("handler panicked (request {idx})").into_bytes(),
                    );
                    resp.headers
                        .push(("Connection".to_string(), "close".to_string()));
                    resp
                }
            }
        }
    };
    ctx.metrics.status(resp.status);
    if !served_builtin {
        // One SLO observation per application request (first byte →
        // response ready); built-ins are excluded so scraping /metrics
        // cannot dilute the burn rate it reports. Tail latencies stamp
        // the trace id into the histogram's exemplar slots.
        let latency_us = read_start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        ctx.metrics
            .request
            .record_with_exemplar(latency_us, sctx.trace_id);
        ctx.health.observe_request(resp.status < 500, latency_us);
    }
    resp.headers.push(("X-Request-Id".to_string(), rid));
    if let Some(h) = req_span.header_value() {
        resp.headers.push((trace::SPAN_HEADER.to_string(), h));
    }
    req_span.add_tag_u64("status", resp.status as u64);
    if resp.status >= 500 {
        req_span.set_error();
    }
    // The request body is done with: recycle it so the next request on
    // any connection reads into warm buffers.
    ctx.config.pool.put(std::mem::take(&mut req.body));
    if let Some(FaultAction::DelayResponse(d)) = fault {
        std::thread::sleep(d);
        fault = None;
    }
    let _ = done.send(Completion {
        slot,
        token,
        resp,
        req_span: Some(req_span),
        sctx: Some(sctx),
        close,
        fault,
    });
    reactor.wake();
}

/// Serializes a response head (status line + headers + blank line) into
/// the connection's head scratch (pooled on first use), swapping declared
/// framing headers for `Transfer-Encoding: chunked` when chunking applies
/// — the same wire shape `body::write_framed` produces.
fn build_head(pool: &BufferPool, buf: Vec<u8>, resp: &Response, chunked: bool) -> Vec<u8> {
    let mut head = if buf.capacity() == 0 {
        pool.get(256)
    } else {
        buf
    };
    head.clear();
    head.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", resp.status, resp.reason).as_bytes());
    for (k, v) in &resp.headers {
        if chunked
            && (k.eq_ignore_ascii_case("content-length")
                || k.eq_ignore_ascii_case("transfer-encoding"))
        {
            continue;
        }
        head.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
    }
    if chunked {
        head.extend_from_slice(b"Transfer-Encoding: chunked\r\n");
    }
    head.extend_from_slice(b"\r\n");
    head
}

/// The request id echoed on every response: the client-supplied
/// `X-Request-Id` when it is sane (non-empty, ≤ 128 bytes, printable
/// ASCII), else the server's monotonic request index.
fn request_id(req: &Request, idx: u64) -> String {
    match req.header("x-request-id").map(str::trim) {
        Some(v)
            if !v.is_empty() && v.len() <= 128 && v.bytes().all(|b| (0x20..0x7f).contains(&b)) =>
        {
            v.to_string()
        }
        _ => idx.to_string(),
    }
}

/// Built-in observability endpoints, served ahead of the application
/// handler: `GET /metrics` (text exposition), `GET /metrics.json`,
/// `GET /trace.json` (Chrome `trace_event` snapshot of the flight
/// recorder), `GET /trace.txt` (compact span-tree dump),
/// `GET /profile.json` (per-phase self-time profile of the flight
/// recorder), `GET /healthz` (liveness), and `GET /statusz` (readiness
/// plus SLO burn rates, watchdog state, proc gauges, and the slowlog;
/// `503` while unready). These paths are reserved — requests to them
/// never reach the handler.
/// Whether a request targets a reserved built-in endpoint (these bypass
/// admission control — shedding `/metrics` would blind operators to the
/// very overload doing the shedding, and a load balancer must be able
/// to read `/healthz` precisely when the server is drowning).
fn is_builtin_path(req: &Request) -> bool {
    req.method == "GET"
        && matches!(
            req.path.as_str(),
            "/metrics"
                | "/metrics.json"
                | "/trace.json"
                | "/trace.txt"
                | "/profile.json"
                | "/healthz"
                | "/statusz"
        )
}

fn builtin_response(ctx: &Ctx, req: &Request) -> Option<Response> {
    if req.method != "GET" {
        return None;
    }
    match req.path.as_str() {
        "/metrics" => Some(Response::ok(
            "text/plain; version=0.0.4; charset=utf-8",
            ctx.config.telemetry.render_text().into_bytes(),
        )),
        "/metrics.json" => Some(Response::ok(
            "application/json",
            ctx.config.telemetry.render_json().into_bytes(),
        )),
        "/trace.json" => Some(Response::ok(
            "application/json",
            ctx.tracer.render_chrome_json().into_bytes(),
        )),
        "/trace.txt" => Some(Response::ok(
            "text/plain; charset=utf-8",
            ctx.tracer.render_text_dump().into_bytes(),
        )),
        "/profile.json" => Some(Response::ok(
            "application/json",
            ctx.config.telemetry.render_profile_json().into_bytes(),
        )),
        "/healthz" => Some(Response::ok(
            "text/plain; charset=utf-8",
            ctx.health.healthz_body().as_bytes().to_vec(),
        )),
        "/statusz" => {
            let body = ctx.health.statusz_json().into_bytes();
            Some(if ctx.health.ready() {
                Response::ok("application/json", body)
            } else {
                Response::with_status(503, "Service Unavailable", "application/json", body)
            })
        }
        _ => None,
    }
}

/// Handle to a running [`HttpServer`]; shuts the server down on drop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    reactor: Arc<Reactor>,
    event_loop: Option<std::thread::JoinHandle<()>>,
    connections: Arc<AtomicU64>,
    ctx: Arc<Ctx>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::SeqCst)
    }

    /// Requests served so far.
    pub fn requests(&self) -> u64 {
        self.ctx.requests.load(Ordering::SeqCst)
    }

    /// Connections currently open (accepted and not yet closed).
    pub fn active_connections(&self) -> u64 {
        self.ctx.active.load(Ordering::SeqCst)
    }

    /// The server's runtime health monitor (watchdog state, SLO burn
    /// rates, slowlog) — what `/healthz` and `/statusz` serve.
    pub fn health(&self) -> Arc<HealthMonitor> {
        Arc::clone(&self.ctx.health)
    }

    /// Stops accepting, closes idle connections immediately, drains
    /// in-flight requests and responses, and joins the event loop (which
    /// in turn joins the CPU pool) before returning.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.reactor.wake();
        if let Some(t) = self.event_loop.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HttpClient;
    use std::io::Read;

    fn echo_server(config: ServerConfig) -> ServerHandle {
        HttpServer::bind_with("127.0.0.1:0".parse().unwrap(), config, |r: &Request| {
            Response::ok("text/plain", r.body.clone())
        })
        .unwrap()
    }

    #[test]
    fn admission_hook_sheds_from_the_event_loop() {
        use std::sync::atomic::AtomicBool;
        let shedding = Arc::new(AtomicBool::new(false));
        let reg = Registry::new();
        let flag = Arc::clone(&shedding);
        let config = ServerConfig::default().telemetry(reg.clone()).admission(
            move |_req: &Request, _load: &ServerLoad| {
                if flag.load(Ordering::SeqCst) {
                    let mut resp = Response::with_status(
                        503,
                        "Service Unavailable",
                        "text/plain",
                        b"shed".to_vec(),
                    );
                    resp.headers
                        .push(("Retry-After".to_string(), "1".to_string()));
                    Admission::Respond(resp)
                } else {
                    Admission::Admit
                }
            },
        );
        let handle = echo_server(config);
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        // Admitted while idle.
        let resp = client.post("/x", "text/plain", b"hi".to_vec()).unwrap();
        assert_eq!(resp.status, 200);
        // Shed once the hook says overloaded — and the keep-alive
        // connection survives the 503 to carry later calls.
        shedding.store(true, Ordering::SeqCst);
        let resp = client.post("/x", "text/plain", b"hi".to_vec()).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(resp.header("x-request-id").is_some());
        assert_eq!(resp.body, b"shed");
        // Built-in observability is exempt from admission.
        let metrics = client.send(Request::get("/metrics")).unwrap();
        assert_eq!(metrics.status, 200);
        let text = String::from_utf8(metrics.body).unwrap();
        assert!(
            text.contains("http_admission_shed 1"),
            "shed counted once: {text}"
        );
        shedding.store(false, Ordering::SeqCst);
        let resp = client.post("/x", "text/plain", b"back".to_vec()).unwrap();
        assert_eq!(resp.status, 200, "same connection serves again");
        assert_eq!(reg.counter("http.admission.shed").get(), 1);
    }

    #[test]
    fn counts_connections_and_requests() {
        let handle = echo_server(ServerConfig::default());
        let mut c1 = HttpClient::connect(handle.addr()).unwrap();
        let mut c2 = HttpClient::connect(handle.addr()).unwrap();
        for _ in 0..3 {
            c1.post("/a", "text/plain", b"x".to_vec()).unwrap();
            c2.post("/b", "text/plain", b"y".to_vec()).unwrap();
        }
        assert_eq!(handle.connections(), 2);
        assert_eq!(handle.requests(), 6);
        assert_eq!(handle.active_connections(), 2);
    }

    #[test]
    fn connection_close_honored() {
        let handle = echo_server(ServerConfig::default());
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let mut req = Request::post("/x", "text/plain", b"bye".to_vec());
        req.headers
            .push(("Connection".to_string(), "close".to_string()));
        let resp = client.send(req).unwrap();
        assert_eq!(resp.body, b"bye");
        // The server closed; the next request fails.
        std::thread::sleep(Duration::from_millis(50));
        assert!(client.post("/y", "text/plain", b"?".to_vec()).is_err());
    }

    #[test]
    fn shutdown_stops_accepting_and_joins() {
        let mut handle = echo_server(ServerConfig::default());
        let addr = handle.addr();
        handle.shutdown();
        assert!(handle.event_loop.is_none(), "event loop joined");
        assert_eq!(handle.active_connections(), 0);
        // Either connect fails or the request after it fails.
        if let Ok(mut c) = HttpClient::connect(addr) {
            assert!(c.post("/", "text/plain", vec![]).is_err());
        }
    }

    #[test]
    fn shutdown_drains_open_connections() {
        let mut handle = echo_server(ServerConfig::default());
        let clients: Vec<_> = (0..4)
            .map(|_| HttpClient::connect(handle.addr()).unwrap())
            .collect();
        // Give the event loop a beat to register the connections.
        let t0 = Instant::now();
        while handle.active_connections() < 4 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(handle.active_connections(), 4);
        handle.shutdown();
        assert_eq!(handle.active_connections(), 0, "drained on shutdown");
        drop(clients);
    }

    #[test]
    fn small_pool_multiplexes_many_keepalive_connections() {
        // 2 CPU workers, 8 concurrent persistent connections: thread-per-
        // connection semantics would need 8 threads; the reactor must
        // interleave them without deadlock.
        let handle = echo_server(ServerConfig::default().worker_threads(2));
        let addr = handle.addr();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = HttpClient::connect(addr).unwrap();
                    for j in 0..5 {
                        let body = format!("c{i} r{j}").into_bytes();
                        let r = c.post("/m", "text/plain", body.clone()).unwrap();
                        assert_eq!(r.body, body);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(handle.requests(), 40);
    }

    #[test]
    fn malformed_request_gets_400() {
        let handle = echo_server(ServerConfig::default());
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"NOT VALID HTTP AT ALL\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap(); // server responds then closes
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
    }

    #[test]
    fn oversized_body_gets_413() {
        let handle = echo_server(ServerConfig::default().max_body_bytes(64));
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"POST /x HTTP/1.1\r\nContent-Length: 100000\r\n\r\n")
            .unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 413"), "got: {text}");
    }

    #[test]
    fn oversized_headers_get_413() {
        let handle = echo_server(ServerConfig::default().max_header_bytes(128));
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        let big = format!("POST /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(1000));
        s.write_all(big.as_bytes()).unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 413"), "got: {text}");
    }

    #[test]
    fn stalled_request_gets_408() {
        let handle = echo_server(ServerConfig::default().read_timeout(Duration::from_millis(60)));
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        // Start a request but never finish the headers.
        s.write_all(b"POST /x HTTP/1.1\r\nContent-Le").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 408"), "got: {text}");
    }

    #[test]
    fn keep_alive_idle_timeout_closes() {
        let handle =
            echo_server(ServerConfig::default().keep_alive_timeout(Duration::from_millis(80)));
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        client.post("/a", "text/plain", b"1".to_vec()).unwrap();
        std::thread::sleep(Duration::from_millis(300));
        assert!(
            client.post("/b", "text/plain", b"2".to_vec()).is_err(),
            "idle connection should have been closed"
        );
    }

    #[test]
    fn keep_alive_max_idle_reaps_parked_connections() {
        let reg = Registry::new();
        let handle = echo_server(
            ServerConfig::default()
                .telemetry(reg.clone())
                .keep_alive_timeout(Duration::from_secs(60))
                .keep_alive_max_idle(Duration::from_millis(60)),
        );
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        client.post("/a", "text/plain", b"1".to_vec()).unwrap();
        // The 60 ms idle cap beats the 60 s keep-alive: the parked
        // connection is reaped and its buffers released.
        let t0 = Instant::now();
        while handle.active_connections() > 0 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(handle.active_connections(), 0, "idle connection reaped");
        assert_eq!(reg.gauge("http.connections.idle").get(), 0);
        assert!(reg.counter("reactor.timeouts").get() >= 1);
        assert!(
            client.post("/b", "text/plain", b"2".to_vec()).is_err(),
            "reaped connection is closed"
        );
    }

    #[test]
    fn connection_and_reactor_metrics_are_exposed() {
        let reg = Registry::new();
        let handle = echo_server(ServerConfig::default().telemetry(reg.clone()));
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        c.post("/x", "text/plain", b"hi".to_vec()).unwrap();
        let resp = c.send(Request::get("/metrics")).unwrap();
        let text = String::from_utf8(resp.body).unwrap();
        let samples = sbq_telemetry::expo::parse_text(&text).expect("exposition parses");
        let get = |n: &str| {
            samples
                .iter()
                .find(|s| s.name == n && s.quantile.is_none())
                .unwrap_or_else(|| panic!("missing {n} in:\n{text}"))
                .value
        };
        assert_eq!(get("http_connections_accepted"), 1.0);
        assert_eq!(get("http_connections_open"), 1.0);
        assert_eq!(get("http_connections_idle"), 0.0, "mid-request, not idle");
        assert!(get("reactor_events") >= 1.0);
        assert!(get("reactor_wakeups") >= 1.0, "job completions wake");
        drop(c);
        let t0 = Instant::now();
        while reg.counter("http.connections.closed").get() < 1
            && t0.elapsed() < Duration::from_secs(2)
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(reg.counter("http.connections.closed").get(), 1);
        assert_eq!(reg.gauge("http.connections.open").get(), 0);
    }

    #[test]
    fn response_survives_one_byte_writes_with_eintr() {
        let handle = echo_server(
            ServerConfig::default().faults(FaultSchedule::new().short_writes(1).interrupt_every(3)),
        );
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        let body: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
        let r = c.post("/x", "text/plain", body.clone()).unwrap();
        assert_eq!(r.body, body, "response intact despite 1-byte writes");
        // Keep-alive still works under shaping.
        let r = c.post("/y", "text/plain", b"again".to_vec()).unwrap();
        assert_eq!(r.body, b"again");
    }

    #[test]
    fn request_survives_shaped_short_reads() {
        let handle =
            echo_server(ServerConfig::default().faults(FaultSchedule::new().short_reads(3)));
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        let body: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let r = c.post("/x", "text/plain", body.clone()).unwrap();
        assert_eq!(r.body, body);
    }

    #[test]
    fn fault_drop_response_closes_without_reply() {
        let handle = echo_server(
            ServerConfig::default().faults(FaultSchedule::new().at(0, FaultAction::DropResponse)),
        );
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let err = client.post("/a", "text/plain", b"x".to_vec()).unwrap_err();
        assert!(matches!(err, HttpError::Protocol(_)), "{err}");
        // Only the first request is faulted; a fresh connection succeeds.
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let r = client.post("/a", "text/plain", b"x".to_vec()).unwrap();
        assert_eq!(r.body, b"x");
    }

    #[test]
    fn fault_truncate_breaks_the_response() {
        let handle = echo_server(
            ServerConfig::default()
                .faults(FaultSchedule::new().at(0, FaultAction::TruncateResponse(7))),
        );
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        assert!(client
            .post("/a", "text/plain", b"0123456789".to_vec())
            .is_err());
    }

    #[test]
    fn fault_delay_holds_the_response() {
        let handle = echo_server(ServerConfig::default().faults(
            FaultSchedule::new().at(0, FaultAction::DelayResponse(Duration::from_millis(120))),
        ));
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let t0 = Instant::now();
        let r = client.post("/a", "text/plain", b"x".to_vec()).unwrap();
        assert_eq!(r.body, b"x");
        assert!(t0.elapsed() >= Duration::from_millis(120));
    }

    #[test]
    fn panic_response_carries_the_request_id() {
        let reg = Registry::new();
        let handle = HttpServer::bind_with(
            "127.0.0.1:0".parse().unwrap(),
            ServerConfig::default().telemetry(reg.clone()),
            |r: &Request| {
                if r.path == "/boom" {
                    panic!("kaboom");
                }
                Response::ok("text/plain", r.body.clone())
            },
        )
        .unwrap();
        // Two good requests first, so the panicking one has a nonzero id.
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        c.post("/ok", "text/plain", b"1".to_vec()).unwrap();
        c.post("/ok", "text/plain", b"2".to_vec()).unwrap();
        let resp = c.post("/boom", "text/plain", vec![]).unwrap();
        assert_eq!(resp.status, 500);
        assert_eq!(resp.body, b"handler panicked (request 2)");
        assert_eq!(resp.header("x-request-id"), Some("2"));
        assert_eq!(reg.counter("http.panics").get(), 1);
        // The connection closed; later requests on new connections still
        // get monotonically increasing ids.
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        let resp = c.post("/boom", "text/plain", vec![]).unwrap();
        assert_eq!(resp.body, b"handler panicked (request 3)");
        assert_eq!(reg.counter("http.panics").get(), 2);
    }

    #[test]
    fn metrics_endpoints_expose_live_counters() {
        let reg = Registry::new();
        let handle = HttpServer::bind_with(
            "127.0.0.1:0".parse().unwrap(),
            ServerConfig::default().telemetry(reg.clone()),
            |r: &Request| Response::ok("text/plain", r.body.clone()),
        )
        .unwrap();
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        for _ in 0..5 {
            c.post("/x", "text/plain", b"hi".to_vec()).unwrap();
        }
        let resp = c.send(Request::get("/metrics")).unwrap();
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        let samples = sbq_telemetry::expo::parse_text(&text).expect("exposition parses");
        let get = |n: &str| {
            samples
                .iter()
                .find(|s| s.name == n && s.quantile.is_none())
                .unwrap_or_else(|| panic!("missing {n} in:\n{text}"))
                .value
        };
        assert_eq!(get("http_requests_post"), 5.0);
        // The /metrics GET itself was counted before rendering.
        assert!(get("http_requests_get") >= 1.0);
        assert_eq!(get("http_status_2xx"), 5.0);
        assert_eq!(get("http_connections_active"), 1.0);
        assert!(get("http_read_ns_count") >= 5.0);
        assert!(get("http_write_ns_count") >= 5.0);
        assert_eq!(
            get("http_handler_ns_count"),
            5.0,
            "metrics GET skips handler"
        );

        let resp = c.send(Request::get("/metrics.json")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        let json = String::from_utf8(resp.body).unwrap();
        assert!(json.contains("\"http.requests.post\":5"), "{json}");
        assert!(json.contains("\"http.queue_wait_ns\":{"), "{json}");
    }

    #[test]
    fn disabled_telemetry_still_serves_metrics_paths() {
        let handle = HttpServer::bind_with(
            "127.0.0.1:0".parse().unwrap(),
            ServerConfig::default().telemetry(Registry::disabled()),
            |r: &Request| Response::ok("text/plain", r.body.clone()),
        )
        .unwrap();
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        let resp = c.send(Request::get("/metrics")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"# telemetry disabled\n");
        let resp = c.send(Request::get("/metrics.json")).unwrap();
        assert_eq!(resp.body, b"{\"enabled\":false}");
    }

    #[test]
    fn every_response_carries_a_request_id() {
        let handle = echo_server(ServerConfig::default());
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        // Minted on a plain request (monotonic index).
        let resp = c.post("/a", "text/plain", b"x".to_vec()).unwrap();
        assert_eq!(resp.header("x-request-id"), Some("0"));
        // Builtin endpoints carry one too.
        let resp = c.send(Request::get("/metrics")).unwrap();
        assert_eq!(resp.header("x-request-id"), Some("1"));
        // A client-supplied id is echoed, not replaced.
        let mut req = Request::post("/b", "text/plain", b"y".to_vec());
        req.headers
            .push(("X-Request-Id".to_string(), "client-abc-123".to_string()));
        let resp = c.send(req).unwrap();
        assert_eq!(resp.header("x-request-id"), Some("client-abc-123"));
        // A hostile id (oversized) is replaced with a minted one.
        let mut req = Request::post("/c", "text/plain", b"z".to_vec());
        req.headers
            .push(("X-Request-Id".to_string(), "x".repeat(500)));
        let resp = c.send(req).unwrap();
        assert_eq!(resp.header("x-request-id"), Some("3"));
    }

    #[test]
    fn error_responses_carry_a_request_id() {
        let handle = echo_server(ServerConfig::default().max_body_bytes(64));
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"POST /x HTTP/1.1\r\nContent-Length: 100000\r\n\r\n")
            .unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 413"), "got: {text}");
        assert!(
            text.to_ascii_lowercase().contains("x-request-id:"),
            "{text}"
        );
    }

    #[test]
    fn malformed_trace_header_is_ignored_never_400() {
        let reg = Registry::new();
        let handle = echo_server(ServerConfig::default().telemetry(reg.clone()));
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        for bad in [
            "not-a-context".to_string(),
            String::new(),
            "00-zzzz-yyyy-01".to_string(),
            "x".repeat(10_000), // oversized (but under the header cap)
            "00-00000000000000000000000000000000-0000000000000000-01".to_string(),
        ] {
            let mut req = Request::post("/x", "text/plain", b"hi".to_vec());
            req.headers.push(("X-SBQ-Trace".to_string(), bad));
            let resp = c.send(req).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body, b"hi");
            // No caller context → the server span is a fresh root, and
            // the response still reports it.
            assert!(resp.server_span().is_some());
        }
    }

    #[test]
    fn wellformed_trace_header_is_adopted_and_echoed() {
        let reg = Registry::new();
        let handle = echo_server(ServerConfig::default().telemetry(reg.clone()));
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        let caller = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
        let mut req = Request::post("/x", "text/plain", b"hi".to_vec());
        req.headers
            .push(("X-SBQ-Trace".to_string(), caller.to_string()));
        let resp = c.send(req).unwrap();
        let span = resp.server_span().expect("server reports its span");
        assert_eq!(span.trace_id, 0x4bf92f3577b34da6a3ce929d0e0e4736);
        assert_ne!(span.span_id, 0x00f067aa0ba902b7, "fresh server span id");
        assert!(span.sampled());
        // The recorded server spans share the caller's trace id. The
        // response is written before the event loop finishes recording
        // its spans, so allow the recorder a moment to catch up.
        let deadline = Instant::now() + Duration::from_secs(2);
        let events = loop {
            let events = reg.tracer().snapshot();
            let have_all = ["server.request", "server.write"]
                .iter()
                .all(|n| events.iter().any(|e| e.name == *n));
            if have_all || Instant::now() >= deadline {
                break events;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        let req_span = events
            .iter()
            .find(|e| e.name == "server.request")
            .expect("server.request recorded");
        assert_eq!(req_span.trace_id, 0x4bf92f3577b34da6a3ce929d0e0e4736);
        assert_eq!(req_span.parent_id, 0x00f067aa0ba902b7);
        for phase in [
            "server.queue_wait",
            "server.read",
            "server.handler",
            "server.write",
        ] {
            let e = events
                .iter()
                .find(|e| e.name == phase)
                .unwrap_or_else(|| panic!("{phase} missing"));
            assert_eq!(e.trace_id, req_span.trace_id);
            assert_eq!(e.parent_id, req_span.span_id, "{phase} parents on request");
        }
    }

    #[test]
    fn trace_json_endpoint_serves_valid_chrome_json() {
        let reg = Registry::new();
        let handle = echo_server(ServerConfig::default().telemetry(reg.clone()));
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        c.post("/x", "text/plain", b"hi".to_vec()).unwrap();
        let resp = c.send(Request::get("/trace.json")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        let json = String::from_utf8(resp.body).unwrap();
        sbq_telemetry::expo::validate_json(&json).expect("trace.json validates");
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"server.request\""));
        let resp = c.send(Request::get("/trace.txt")).unwrap();
        assert!(String::from_utf8(resp.body)
            .unwrap()
            .contains("server.request"));
    }

    #[test]
    fn disabled_telemetry_trace_json_is_empty_but_valid() {
        let handle = echo_server(ServerConfig::default().telemetry(Registry::disabled()));
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        c.post("/x", "text/plain", b"hi".to_vec()).unwrap();
        let resp = c.send(Request::get("/trace.json")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body,
            b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
        // Responses still carry request ids with telemetry off.
        assert_eq!(resp.header("x-request-id"), Some("1"));
        // But no span header: there is nothing to stitch.
        assert_eq!(resp.server_span(), None);
    }

    #[test]
    fn wildcard_bind_shutdown_does_not_hang() {
        let mut handle = HttpServer::bind("0.0.0.0:0".parse().unwrap(), |r: &Request| {
            Response::ok("text/plain", r.body.clone())
        })
        .unwrap();
        let t0 = Instant::now();
        handle.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "shutdown hung on wildcard bind"
        );
    }

    #[test]
    fn pipelined_requests_are_answered_in_order() {
        let handle = echo_server(ServerConfig::default());
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        // Two requests in one write: the second must be served from the
        // leftover input buffer without another readiness event.
        let mut wire = Vec::new();
        wire.extend_from_slice(&Request::post("/1", "text/plain", b"one".to_vec()).to_bytes());
        wire.extend_from_slice(&Request::post("/2", "text/plain", b"two".to_vec()).to_bytes());
        s.write_all(&wire).unwrap();
        let mut r = std::io::BufReader::new(s.try_clone().unwrap());
        let a = Response::read_from(&mut r).unwrap();
        let b = Response::read_from(&mut r).unwrap();
        assert_eq!(a.body, b"one");
        assert_eq!(b.body, b"two");
    }

    #[test]
    fn watchdog_catches_injected_event_loop_stall() {
        let reg = Registry::new();
        let handle = echo_server(
            ServerConfig::default()
                .telemetry(reg.clone())
                .health(
                    HealthConfig::new()
                        .loop_lag_budget(Duration::from_millis(100))
                        .heartbeat_period(Duration::from_millis(25))
                        .without_proc_sampler(),
                )
                .faults(FaultSchedule::new().stall_event_loop(1, Duration::from_millis(400))),
        );
        let health = handle.health();
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        c.post("/a", "text/plain", b"0".to_vec()).unwrap();
        // Request 1 freezes the event loop for 400 ms at dispatch — the
        // response still arrives, but the heartbeat due during the
        // freeze fires late and must trip the watchdog.
        let r = c.post("/a", "text/plain", b"1".to_vec()).unwrap();
        assert_eq!(r.body, b"1");
        let t0 = Instant::now();
        while reg.counter("reactor.stalls").get() == 0 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            reg.counter("reactor.stalls").get(),
            1,
            "latched exactly once"
        );
        // The next on-time beat clears the latch without re-counting.
        let t0 = Instant::now();
        while reg.gauge("reactor.stalled").get() != 0 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(reg.gauge("reactor.stalled").get(), 0, "latch cleared");
        assert_eq!(reg.counter("reactor.stalls").get(), 1, "one episode only");
        let log = health.slowlog().entries();
        assert!(log.iter().any(|e| e.kind == "reactor.stall"), "{log:?}");
        assert!(log.iter().any(|e| e.kind == "reactor.recovered"), "{log:?}");
        // The stall dominates the lag histogram's tail.
        let lag = reg.histogram("reactor.loop_lag_us").snapshot();
        assert!(
            lag.quantile(0.99) >= 100_000,
            "p99 lag {}us should reflect the 400ms stall",
            lag.quantile(0.99)
        );
    }

    #[test]
    fn health_endpoints_serve_liveness_readiness_and_profile() {
        let reg = Registry::new();
        let handle = echo_server(ServerConfig::default().telemetry(reg.clone()));
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        c.post("/x", "text/plain", b"hi".to_vec()).unwrap();
        let resp = c.send(Request::get("/healthz")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"ok\n");
        let resp = c.send(Request::get("/statusz")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        let json = String::from_utf8(resp.body).unwrap();
        sbq_telemetry::expo::validate_json(&json).expect("statusz validates");
        assert!(json.contains("\"ready\":true"), "{json}");
        assert!(json.contains("\"availability_burn\""), "{json}");
        assert!(json.contains("\"rss_bytes\""), "{json}");
        let resp = c.send(Request::get("/profile.json")).unwrap();
        assert_eq!(resp.status, 200);
        let json = String::from_utf8(resp.body).unwrap();
        sbq_telemetry::expo::validate_json(&json).expect("profile validates");
        assert!(json.contains("\"server.handler\""), "{json}");

        // With telemetry disabled the endpoints still answer (inert
        // monitor, no sampler thread) instead of falling through to the
        // application handler.
        let handle = echo_server(ServerConfig::default().telemetry(Registry::disabled()));
        assert!(!handle.health().is_enabled());
        assert!(!handle.health().sampler_running());
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        let resp = c.send(Request::get("/healthz")).unwrap();
        assert_eq!(resp.body, b"ok\n");
        let resp = c.send(Request::get("/statusz")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"{\"ready\":true,\"enabled\":false}");
        let resp = c.send(Request::get("/profile.json")).unwrap();
        assert_eq!(resp.body, b"{\"spans\":0,\"phases\":[]}");
    }

    #[test]
    fn request_latency_exemplars_resolve_to_recorded_traces() {
        let reg = Registry::new();
        let handle = echo_server(ServerConfig::default().telemetry(reg.clone()));
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        for i in 0..5 {
            c.post("/x", "text/plain", vec![b'a'; 100 * (i + 1)])
                .unwrap();
        }
        let resp = c.send(Request::get("/metrics")).unwrap();
        let text = String::from_utf8(resp.body).unwrap();
        let samples = sbq_telemetry::expo::parse_text(&text).expect("exposition parses");
        let (hex, _value) = samples
            .iter()
            .find(|s| s.name == "http_request_us_max")
            .and_then(|s| s.exemplar.clone())
            .expect("http.request_us tail carries a trace-id exemplar");
        // The exemplar's trace id must resolve to spans in the flight
        // recorder — both directly and via the /trace.json rendering.
        let tid = u128::from_str_radix(&hex, 16).unwrap();
        assert!(
            reg.tracer().snapshot().iter().any(|e| e.trace_id == tid),
            "exemplar trace {hex} not in the flight recorder"
        );
        let resp = c.send(Request::get("/trace.json")).unwrap();
        let json = String::from_utf8(resp.body).unwrap();
        assert!(
            json.contains(&format!("\"trace\":\"{hex}\"")),
            "exemplar trace {hex} not in /trace.json"
        );
    }

    #[test]
    fn admission_hook_receives_health_snapshot() {
        use std::sync::atomic::AtomicBool;
        let saw_health = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&saw_health);
        let config = ServerConfig::default()
            .telemetry(Registry::new())
            .admission(move |_req: &Request, load: &ServerLoad| {
                let h = load.health.expect("health snapshot present");
                assert!(!h.red && !h.stalled, "fresh server is healthy");
                flag.store(true, Ordering::SeqCst);
                Admission::Admit
            });
        let handle = echo_server(config);
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        c.post("/x", "text/plain", b"hi".to_vec()).unwrap();
        assert!(saw_health.load(Ordering::SeqCst));
    }
}
