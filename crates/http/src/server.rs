//! Worker-pool HTTP server.
//!
//! A single acceptor thread feeds a *bounded* accept queue (the bound is
//! the backpressure: when every worker is busy and the queue is full, the
//! acceptor blocks and new connections wait in the kernel backlog). A
//! fixed pool of workers multiplexes all open connections: each worker
//! takes a connection, serves whatever requests arrive within a short
//! slice, and either closes it (peer gone, `Connection: close`, idle too
//! long, shutdown) or parks it back on the resume queue for the next free
//! worker. A fixed pool therefore serves arbitrarily many keep-alive
//! connections — unlike thread-per-connection, which pins one OS thread to
//! every idle client.

use crate::body::ChunkPolicy;
use crate::faults::{FaultAction, FaultSchedule};
use crate::message::{HttpError, Limits, Request, Response, DEFAULT_IO_TIMEOUT};
use crate::metrics::HttpMetrics;
use sbq_runtime::channel::{self, Receiver, Sender, TryRecvError};
use sbq_runtime::BufferPool;
use sbq_telemetry::trace;
use sbq_telemetry::{Registry, Span, Tracer};
use std::io::{BufRead, BufReader, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a worker waits on a parked connection for new data before
/// handing it back to the resume queue. Also bounds how quickly workers
/// notice shutdown.
const SLICE: Duration = Duration::from_millis(20);
/// How long an idle worker blocks on the resume queue before checking the
/// accept queue again.
const CONNQ_POLL: Duration = Duration::from_millis(20);
/// Cap on requests served in one slice, so one chatty connection cannot
/// monopolize a worker while others wait.
const MAX_REQUESTS_PER_SLICE: u32 = 32;

/// Server-side transport configuration; construct with
/// [`ServerConfig::default`] and refine with the consuming builder
/// methods.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    worker_threads: usize,
    accept_backlog: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    keep_alive_timeout: Duration,
    limits: Limits,
    faults: FaultSchedule,
    telemetry: Registry,
    chunking: ChunkPolicy,
    pool: BufferPool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            worker_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            accept_backlog: 128,
            read_timeout: DEFAULT_IO_TIMEOUT,
            write_timeout: DEFAULT_IO_TIMEOUT,
            keep_alive_timeout: Duration::from_secs(60),
            limits: Limits::default(),
            faults: FaultSchedule::new(),
            telemetry: Registry::default(),
            chunking: ChunkPolicy::disabled(),
            pool: BufferPool::global().clone(),
        }
    }
}

impl ServerConfig {
    /// Fixed number of worker threads (at least 1). Defaults to the
    /// machine's available parallelism.
    pub fn worker_threads(mut self, n: usize) -> ServerConfig {
        self.worker_threads = n.max(1);
        self
    }

    /// Capacity of the accept queue; the acceptor blocks when it is full.
    pub fn accept_backlog(mut self, n: usize) -> ServerConfig {
        self.accept_backlog = n.max(1);
        self
    }

    /// Per-read deadline while parsing a request that has started
    /// arriving; a stalled sender gets `408` and the connection closed.
    pub fn read_timeout(mut self, d: Duration) -> ServerConfig {
        self.read_timeout = d;
        self
    }

    /// Per-write deadline for responses.
    pub fn write_timeout(mut self, d: Duration) -> ServerConfig {
        self.write_timeout = d;
        self
    }

    /// How long a keep-alive connection may sit with no request before the
    /// server closes it.
    pub fn keep_alive_timeout(mut self, d: Duration) -> ServerConfig {
        self.keep_alive_timeout = d;
        self
    }

    /// Cap on request-line plus header bytes; beyond it the request gets
    /// `413`.
    pub fn max_header_bytes(mut self, n: usize) -> ServerConfig {
        self.limits.max_header_bytes = n;
        self
    }

    /// Cap on declared body length; beyond it the request gets `413`
    /// without the body being read.
    pub fn max_body_bytes(mut self, n: usize) -> ServerConfig {
        self.limits.max_body_bytes = n;
        self
    }

    /// Replaces all size limits at once.
    pub fn limits(mut self, limits: Limits) -> ServerConfig {
        self.limits = limits;
        self
    }

    /// Opt in to `Transfer-Encoding: chunked` for response bodies of at
    /// least `threshold` bytes (off by default). Chunked *requests* are
    /// always accepted regardless of this setting.
    pub fn chunk_threshold(mut self, threshold: usize) -> ServerConfig {
        self.chunking = ChunkPolicy::above(threshold).chunk_size(self.chunking.chunk_bytes());
        self
    }

    /// Chunk size used when response chunking applies (default
    /// [`ChunkPolicy::DEFAULT_CHUNK_SIZE`]).
    pub fn chunk_size(mut self, n: usize) -> ServerConfig {
        self.chunking = self.chunking.chunk_size(n);
        self
    }

    /// Installs a response-fault schedule (tests only in spirit, but safe
    /// in production: the default schedule is empty).
    pub fn faults(mut self, faults: FaultSchedule) -> ServerConfig {
        self.faults = faults;
        self
    }

    /// Telemetry registry the server records into and exposes over
    /// `GET /metrics` (text) and `GET /metrics.json`. Defaults to the
    /// process-wide [`Registry::global`]; pass [`Registry::disabled`] to
    /// turn instrumentation off.
    pub fn telemetry(mut self, registry: Registry) -> ServerConfig {
        self.telemetry = registry;
        self
    }

    /// The registry this configuration records into.
    pub fn telemetry_registry(&self) -> &Registry {
        &self.telemetry
    }

    /// Buffer pool request bodies are read into and recycled through.
    /// Defaults to the process-wide [`BufferPool::global`]; supply a
    /// dedicated pool to isolate (or observe) one server's traffic.
    pub fn buffer_pool(mut self, pool: BufferPool) -> ServerConfig {
        self.pool = pool;
        self
    }

    /// The buffer pool this configuration serves bodies from.
    pub fn buffer_pool_ref(&self) -> &BufferPool {
        &self.pool
    }
}

/// A running HTTP server. The handler runs on pool workers; it must be
/// `Send + Sync` because requests are concurrent.
pub struct HttpServer;

impl HttpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) with the default
    /// [`ServerConfig`].
    pub fn bind<H>(addr: SocketAddr, handler: H) -> std::io::Result<ServerHandle>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        Self::bind_with(addr, ServerConfig::default(), handler)
    }

    /// Binds to `addr` and serves with the given configuration until the
    /// returned handle is dropped or shut down.
    pub fn bind_with<H>(
        addr: SocketAddr,
        config: ServerConfig,
        handler: H,
    ) -> std::io::Result<ServerHandle>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let workers_n = config.worker_threads;
        let metrics = HttpMetrics::new(&config.telemetry);
        let tracer = config.telemetry.tracer();
        if config.telemetry.is_enabled() {
            // First observer wins; later binds against an already-observed
            // pool are no-ops, so the global pool reports to the first
            // enabled registry it meets.
            config
                .pool
                .set_observer(sbq_telemetry::pool_observer(&config.telemetry));
        }
        let ctx = Arc::new(Ctx {
            handler: Box::new(handler),
            metrics,
            tracer,
            config,
            stop: Arc::clone(&stop),
            requests: AtomicU64::new(0),
            active: AtomicU64::new(0),
        });

        // Each accepted stream carries its accept timestamp so the worker
        // that picks it up can record the queue wait.
        let (accept_tx, accept_rx) =
            channel::bounded::<(TcpStream, Instant)>(ctx.config.accept_backlog);
        let (conn_tx, conn_rx) = channel::unbounded::<Conn>();

        let stop2 = Arc::clone(&stop);
        let conns2 = Arc::clone(&connections);
        let acceptor = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                conns2.fetch_add(1, Ordering::SeqCst);
                // Blocks while the queue is full: that is the backpressure.
                if accept_tx.send((stream, Instant::now())).is_err() {
                    break;
                }
            }
            // accept_tx drops here; workers drain the queue and exit.
        });

        let workers = (0..workers_n)
            .map(|_| {
                let ctx = Arc::clone(&ctx);
                let accept_rx = accept_rx.clone();
                let conn_tx = conn_tx.clone();
                let conn_rx = conn_rx.clone();
                std::thread::spawn(move || worker_loop(&ctx, &accept_rx, &conn_tx, &conn_rx))
            })
            .collect();

        Ok(ServerHandle {
            addr: local,
            stop,
            acceptor: Some(acceptor),
            workers,
            connections,
            ctx,
        })
    }
}

struct Ctx {
    handler: Box<dyn Fn(&Request) -> Response + Send + Sync>,
    metrics: HttpMetrics,
    tracer: Tracer,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
    requests: AtomicU64,
    active: AtomicU64,
}

/// One open connection, parked between worker slices.
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    last_activity: Instant,
    /// Accept-queue wait, attached as a span to the first request served
    /// on this connection (then taken).
    queue_wait: Option<Duration>,
}

fn worker_loop(
    ctx: &Ctx,
    accept_rx: &Receiver<(TcpStream, Instant)>,
    conn_tx: &Sender<Conn>,
    conn_rx: &Receiver<Conn>,
) {
    loop {
        // New connections first — a cheap nonblocking check, so resumed
        // connections can never starve the accept queue.
        match accept_rx.try_recv() {
            Ok((stream, accepted_at)) => {
                let wait = accepted_at.elapsed();
                ctx.metrics.queue_wait.record_duration(wait);
                if let Some(conn) = open_conn(ctx, stream, wait) {
                    slice_then_park(ctx, conn, conn_tx);
                }
                continue;
            }
            Err(TryRecvError::Empty) => {}
            Err(TryRecvError::Disconnected) => {
                // Acceptor exited (shutdown). Drain parked connections —
                // slices close them now that the stop flag is set — then
                // leave.
                match conn_rx.try_recv() {
                    Ok(conn) => slice_then_park(ctx, conn, conn_tx),
                    Err(_) => break,
                }
                continue;
            }
        }
        if let Ok(conn) = conn_rx.recv_timeout(CONNQ_POLL) {
            slice_then_park(ctx, conn, conn_tx);
        }
    }
}

fn open_conn(ctx: &Ctx, stream: TcpStream, queue_wait: Duration) -> Option<Conn> {
    stream.set_nodelay(true).ok()?;
    stream
        .set_write_timeout(Some(ctx.config.write_timeout))
        .ok()?;
    let writer = stream.try_clone().ok()?;
    ctx.active.fetch_add(1, Ordering::SeqCst);
    ctx.metrics.active.inc();
    Some(Conn {
        reader: BufReader::new(stream),
        writer,
        last_activity: Instant::now(),
        queue_wait: Some(queue_wait),
    })
}

fn slice_then_park(ctx: &Ctx, conn: Conn, conn_tx: &Sender<Conn>) {
    match run_slice(ctx, conn) {
        Some(conn) => {
            // Unbounded resume queue: send only fails at teardown, when
            // the connection should die anyway.
            let _ = conn_tx.send(conn);
        }
        None => {
            ctx.active.fetch_sub(1, Ordering::SeqCst);
            ctx.metrics.active.dec();
        }
    }
}

/// Serves one connection for one slice. Returns the connection to park it,
/// or `None` once it is closed.
fn run_slice(ctx: &Ctx, mut conn: Conn) -> Option<Conn> {
    let mut handled = 0u32;
    loop {
        // Wait up to SLICE for the start of a request.
        conn.reader.get_ref().set_read_timeout(Some(SLICE)).ok()?;
        match conn.reader.fill_buf() {
            Ok([]) => return None, // peer closed
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if ctx.stop.load(Ordering::SeqCst) {
                    return None; // drained: no pending data at shutdown
                }
                if conn.last_activity.elapsed() >= ctx.config.keep_alive_timeout {
                    return None; // keep-alive idle timeout
                }
                return Some(conn); // park until data arrives
            }
            Err(_) => return None,
        }

        // Data has started arriving: parse the full request under the real
        // read deadline.
        conn.reader
            .get_ref()
            .set_read_timeout(Some(ctx.config.read_timeout))
            .ok()?;
        let read_start = Instant::now();
        let read_span = Span::on(&ctx.metrics.read);
        let parsed =
            Request::read_from_pooled(&mut conn.reader, &ctx.config.limits, &ctx.config.pool);
        drop(read_span);
        match parsed {
            Ok(None) => return None,
            Ok(Some(mut req)) => {
                conn.last_activity = Instant::now();
                if req.has_header("transfer-encoding") {
                    ctx.metrics.chunked_rx.inc();
                }
                let close_requested = req
                    .header("connection")
                    .map(|v| v.eq_ignore_ascii_case("close"))
                    .unwrap_or(false);
                let idx = ctx.requests.fetch_add(1, Ordering::SeqCst);
                ctx.metrics.method(&req.method);
                let rid = request_id(&req, idx);
                // A malformed or absent X-SBQ-Trace is simply "no caller
                // context": the request is served normally, the server
                // span becomes a root.
                let mut req_span = match req.trace_context() {
                    Some(caller) => ctx
                        .tracer
                        .child_span_at("server.request", &caller, read_start),
                    None => ctx.tracer.root_span("server.request"),
                };
                req_span.add_tag("req_id", &rid);
                req_span.add_tag("method", &req.method);
                let sctx = req_span.context();
                if let Some(wait) = conn.queue_wait.take() {
                    drop(ctx.tracer.child_span_at(
                        "server.queue_wait",
                        &sctx,
                        trace::backdate(read_start, wait),
                    ));
                }
                drop(ctx.tracer.child_span_at("server.read", &sctx, read_start));
                let mut resp = match builtin_response(ctx, &req) {
                    Some(resp) => resp,
                    None => {
                        // A panicking handler must not take a pool worker
                        // (and on a small pool, the whole server) down with
                        // it: catch it and answer 500, closing this
                        // connection only. The request id in the body lets
                        // a client report which call blew up.
                        ctx.metrics.inflight.inc();
                        let handler_span = Span::on(&ctx.metrics.handler);
                        let mut handler_tspan = ctx.tracer.child_span("server.handler", &sctx);
                        let hctx = handler_tspan.context();
                        let enabled = handler_tspan.is_enabled();
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            // Lower layers (marshalling, QoS) parent their
                            // spans on this thread-local context.
                            let _guard = enabled.then(|| trace::set_current(hctx));
                            (ctx.handler)(&req)
                        }));
                        if result.is_err() {
                            handler_tspan.set_error();
                        }
                        drop(handler_tspan);
                        drop(handler_span);
                        ctx.metrics.inflight.dec();
                        match result {
                            Ok(resp) => resp,
                            Err(_) => {
                                ctx.metrics.panics.inc();
                                ctx.metrics.status(500);
                                let mut resp = Response::with_status(
                                    500,
                                    "Internal Server Error",
                                    "text/plain",
                                    format!("handler panicked (request {idx})").into_bytes(),
                                );
                                resp.headers.push(("X-Request-Id".to_string(), rid.clone()));
                                resp.headers
                                    .push(("Connection".to_string(), "close".to_string()));
                                req_span.set_error();
                                req_span.add_tag_u64("status", 500);
                                if let Some(h) = req_span.header_value() {
                                    resp.headers.push((trace::SPAN_HEADER.to_string(), h));
                                }
                                let write_span = Span::on(&ctx.metrics.write);
                                let wspan = ctx.tracer.child_span("server.write", &sctx);
                                write_response(ctx, &mut conn.writer, &resp, None);
                                drop(wspan);
                                drop(write_span);
                                return None;
                            }
                        }
                    }
                };
                ctx.metrics.status(resp.status);
                resp.headers.push(("X-Request-Id".to_string(), rid.clone()));
                if let Some(h) = req_span.header_value() {
                    resp.headers.push((trace::SPAN_HEADER.to_string(), h));
                }
                req_span.add_tag_u64("status", resp.status as u64);
                if resp.status >= 500 {
                    req_span.set_error();
                }
                let keep = {
                    let write_span = Span::on(&ctx.metrics.write);
                    let wspan = ctx.tracer.child_span("server.write", &sctx);
                    let keep = write_response(
                        ctx,
                        &mut conn.writer,
                        &resp,
                        ctx.config.faults.action_for(idx),
                    );
                    drop(wspan);
                    drop(write_span);
                    keep
                };
                drop(req_span);
                // Both bodies are done with: recycle them so the next
                // request on any connection reads into warm buffers.
                ctx.config.pool.put(std::mem::take(&mut req.body));
                ctx.config.pool.put(std::mem::take(&mut resp.body));
                if !keep || close_requested {
                    return None;
                }
                handled += 1;
                if handled >= MAX_REQUESTS_PER_SLICE {
                    if ctx.stop.load(Ordering::SeqCst) {
                        return None;
                    }
                    return Some(conn); // yield the worker to other connections
                }
            }
            Err(e) => {
                let idx = ctx.requests.fetch_add(1, Ordering::SeqCst);
                write_error_response(&mut conn.writer, &e, idx);
                return None;
            }
        }
    }
}

/// The request id echoed on every response: the client-supplied
/// `X-Request-Id` when it is sane (non-empty, ≤ 128 bytes, printable
/// ASCII), else the server's monotonic request index.
fn request_id(req: &Request, idx: u64) -> String {
    match req.header("x-request-id").map(str::trim) {
        Some(v)
            if !v.is_empty() && v.len() <= 128 && v.bytes().all(|b| (0x20..0x7f).contains(&b)) =>
        {
            v.to_string()
        }
        _ => idx.to_string(),
    }
}

/// Built-in observability endpoints, served ahead of the application
/// handler: `GET /metrics` (text exposition), `GET /metrics.json`,
/// `GET /trace.json` (Chrome `trace_event` snapshot of the flight
/// recorder), and `GET /trace.txt` (compact span-tree dump). These
/// paths are reserved — requests to them never reach the handler.
fn builtin_response(ctx: &Ctx, req: &Request) -> Option<Response> {
    if req.method != "GET" {
        return None;
    }
    match req.path.as_str() {
        "/metrics" => Some(Response::ok(
            "text/plain; version=0.0.4; charset=utf-8",
            ctx.config.telemetry.render_text().into_bytes(),
        )),
        "/metrics.json" => Some(Response::ok(
            "application/json",
            ctx.config.telemetry.render_json().into_bytes(),
        )),
        "/trace.json" => Some(Response::ok(
            "application/json",
            ctx.tracer.render_chrome_json().into_bytes(),
        )),
        "/trace.txt" => Some(Response::ok(
            "text/plain; charset=utf-8",
            ctx.tracer.render_text_dump().into_bytes(),
        )),
        _ => None,
    }
}

/// Writes `resp` under the configured chunking policy, applying the
/// scheduled fault if any. Returns whether the connection may be kept
/// alive afterwards.
///
/// The fault-free path streams straight from the response body with no
/// second body-sized buffer; the faulted paths materialize the framed
/// bytes first, because truncation faults are defined on wire offsets
/// (including mid-chunk offsets of a chunked response).
fn write_response(
    ctx: &Ctx,
    w: &mut TcpStream,
    resp: &Response,
    fault: Option<FaultAction>,
) -> bool {
    let policy = &ctx.config.chunking;
    if policy.applies_to(resp.body.len()) {
        ctx.metrics.chunked_tx.inc();
    }
    let write_all = |w: &mut TcpStream, b: &[u8]| w.write_all(b).and_then(|_| w.flush()).is_ok();
    match fault {
        None => resp.write_to(w, policy).is_ok(),
        Some(FaultAction::DropResponse) => false,
        Some(FaultAction::DelayResponse(d)) => {
            std::thread::sleep(d);
            resp.write_to(w, policy).is_ok()
        }
        Some(FaultAction::TruncateResponse(n)) => {
            let bytes = resp.to_wire_bytes(policy);
            let n = n.min(bytes.len());
            write_all(w, &bytes[..n]);
            false
        }
        Some(FaultAction::CloseMidResponse) => {
            let bytes = resp.to_wire_bytes(policy);
            write_all(w, &bytes[..bytes.len() / 2]);
            false
        }
    }
}

/// Best-effort error reply before closing: `413` for size-limit
/// violations, `408` for a stalled sender, `400` for anything malformed.
/// Even these carry an `X-Request-Id` (minted — the request never parsed,
/// so there is no client id to echo).
fn write_error_response(w: &mut TcpStream, e: &HttpError, idx: u64) {
    let (status, reason) = match e {
        HttpError::TooLarge { .. } => (413, "Payload Too Large"),
        HttpError::Timeout(_) => (408, "Request Timeout"),
        HttpError::Protocol(_) => (400, "Bad Request"),
        HttpError::Transport(_) => return, // socket is gone; nothing to say
    };
    let mut resp = Response::with_status(
        status,
        reason,
        "text/plain; charset=utf-8",
        e.to_string().into(),
    );
    resp.headers
        .push(("X-Request-Id".to_string(), idx.to_string()));
    resp.headers
        .push(("Connection".to_string(), "close".to_string()));
    let _ = w.write_all(&resp.to_bytes());
    let _ = w.flush();
}

/// Handle to a running [`HttpServer`]; shuts the pool down on drop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    connections: Arc<AtomicU64>,
    ctx: Arc<Ctx>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::SeqCst)
    }

    /// Requests served so far.
    pub fn requests(&self) -> u64 {
        self.ctx.requests.load(Ordering::SeqCst)
    }

    /// Connections currently open (accepted and not yet closed).
    pub fn active_connections(&self) -> u64 {
        self.ctx.active.load(Ordering::SeqCst)
    }

    /// Stops accepting, drains pending requests on open connections, and
    /// joins every pool thread before returning.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor. A wildcard bind (0.0.0.0/::) is not itself
        // connectable, so aim at the matching loopback address instead.
        let ip = if self.addr.ip().is_unspecified() {
            match self.addr.ip() {
                IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            }
        } else {
            self.addr.ip()
        };
        let unblock = SocketAddr::new(ip, self.addr.port());
        let _ = TcpStream::connect_timeout(&unblock, Duration::from_secs(1));
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HttpClient;
    use std::io::Read;

    fn echo_server(config: ServerConfig) -> ServerHandle {
        HttpServer::bind_with("127.0.0.1:0".parse().unwrap(), config, |r: &Request| {
            Response::ok("text/plain", r.body.clone())
        })
        .unwrap()
    }

    #[test]
    fn counts_connections_and_requests() {
        let handle = echo_server(ServerConfig::default());
        let mut c1 = HttpClient::connect(handle.addr()).unwrap();
        let mut c2 = HttpClient::connect(handle.addr()).unwrap();
        for _ in 0..3 {
            c1.post("/a", "text/plain", b"x".to_vec()).unwrap();
            c2.post("/b", "text/plain", b"y".to_vec()).unwrap();
        }
        assert_eq!(handle.connections(), 2);
        assert_eq!(handle.requests(), 6);
        assert_eq!(handle.active_connections(), 2);
    }

    #[test]
    fn connection_close_honored() {
        let handle = echo_server(ServerConfig::default());
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let mut req = Request::post("/x", "text/plain", b"bye".to_vec());
        req.headers
            .push(("Connection".to_string(), "close".to_string()));
        let resp = client.send(req).unwrap();
        assert_eq!(resp.body, b"bye");
        // The server closed; the next request fails.
        std::thread::sleep(Duration::from_millis(50));
        assert!(client.post("/y", "text/plain", b"?".to_vec()).is_err());
    }

    #[test]
    fn shutdown_stops_accepting_and_joins() {
        let mut handle = echo_server(ServerConfig::default());
        let addr = handle.addr();
        handle.shutdown();
        assert!(handle.workers.is_empty(), "all workers joined");
        assert_eq!(handle.active_connections(), 0);
        // Either connect fails or the request after it fails.
        if let Ok(mut c) = HttpClient::connect(addr) {
            assert!(c.post("/", "text/plain", vec![]).is_err());
        }
    }

    #[test]
    fn shutdown_drains_open_connections() {
        let mut handle = echo_server(ServerConfig::default());
        let clients: Vec<_> = (0..4)
            .map(|_| HttpClient::connect(handle.addr()).unwrap())
            .collect();
        // Give the pool a beat to register the connections.
        let t0 = Instant::now();
        while handle.active_connections() < 4 && t0.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(handle.active_connections(), 4);
        handle.shutdown();
        assert_eq!(handle.active_connections(), 0, "drained on shutdown");
        drop(clients);
    }

    #[test]
    fn small_pool_multiplexes_many_keepalive_connections() {
        // 2 workers, 8 concurrent persistent connections: thread-per-
        // connection semantics would need 8 threads; the pool must
        // interleave them without deadlock.
        let handle = echo_server(ServerConfig::default().worker_threads(2));
        let addr = handle.addr();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = HttpClient::connect(addr).unwrap();
                    for j in 0..5 {
                        let body = format!("c{i} r{j}").into_bytes();
                        let r = c.post("/m", "text/plain", body.clone()).unwrap();
                        assert_eq!(r.body, body);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(handle.requests(), 40);
    }

    #[test]
    fn malformed_request_gets_400() {
        let handle = echo_server(ServerConfig::default());
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"NOT VALID HTTP AT ALL\r\n\r\n").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap(); // server responds then closes
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 400"), "got: {text}");
    }

    #[test]
    fn oversized_body_gets_413() {
        let handle = echo_server(ServerConfig::default().max_body_bytes(64));
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"POST /x HTTP/1.1\r\nContent-Length: 100000\r\n\r\n")
            .unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 413"), "got: {text}");
    }

    #[test]
    fn oversized_headers_get_413() {
        let handle = echo_server(ServerConfig::default().max_header_bytes(128));
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        let big = format!("POST /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(1000));
        s.write_all(big.as_bytes()).unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 413"), "got: {text}");
    }

    #[test]
    fn stalled_request_gets_408() {
        let handle = echo_server(ServerConfig::default().read_timeout(Duration::from_millis(60)));
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        // Start a request but never finish the headers.
        s.write_all(b"POST /x HTTP/1.1\r\nContent-Le").unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 408"), "got: {text}");
    }

    #[test]
    fn keep_alive_idle_timeout_closes() {
        let handle =
            echo_server(ServerConfig::default().keep_alive_timeout(Duration::from_millis(80)));
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        client.post("/a", "text/plain", b"1".to_vec()).unwrap();
        std::thread::sleep(Duration::from_millis(300));
        assert!(
            client.post("/b", "text/plain", b"2".to_vec()).is_err(),
            "idle connection should have been closed"
        );
    }

    #[test]
    fn fault_drop_response_closes_without_reply() {
        let handle = echo_server(
            ServerConfig::default().faults(FaultSchedule::new().at(0, FaultAction::DropResponse)),
        );
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let err = client.post("/a", "text/plain", b"x".to_vec()).unwrap_err();
        assert!(matches!(err, HttpError::Protocol(_)), "{err}");
        // Only the first request is faulted; a fresh connection succeeds.
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let r = client.post("/a", "text/plain", b"x".to_vec()).unwrap();
        assert_eq!(r.body, b"x");
    }

    #[test]
    fn fault_truncate_breaks_the_response() {
        let handle = echo_server(
            ServerConfig::default()
                .faults(FaultSchedule::new().at(0, FaultAction::TruncateResponse(7))),
        );
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        assert!(client
            .post("/a", "text/plain", b"0123456789".to_vec())
            .is_err());
    }

    #[test]
    fn fault_delay_holds_the_response() {
        let handle = echo_server(ServerConfig::default().faults(
            FaultSchedule::new().at(0, FaultAction::DelayResponse(Duration::from_millis(120))),
        ));
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let t0 = Instant::now();
        let r = client.post("/a", "text/plain", b"x".to_vec()).unwrap();
        assert_eq!(r.body, b"x");
        assert!(t0.elapsed() >= Duration::from_millis(120));
    }

    #[test]
    fn panic_response_carries_the_request_id() {
        let reg = Registry::new();
        let handle = HttpServer::bind_with(
            "127.0.0.1:0".parse().unwrap(),
            ServerConfig::default().telemetry(reg.clone()),
            |r: &Request| {
                if r.path == "/boom" {
                    panic!("kaboom");
                }
                Response::ok("text/plain", r.body.clone())
            },
        )
        .unwrap();
        // Two good requests first, so the panicking one has a nonzero id.
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        c.post("/ok", "text/plain", b"1".to_vec()).unwrap();
        c.post("/ok", "text/plain", b"2".to_vec()).unwrap();
        let resp = c.post("/boom", "text/plain", vec![]).unwrap();
        assert_eq!(resp.status, 500);
        assert_eq!(resp.body, b"handler panicked (request 2)");
        assert_eq!(resp.header("x-request-id"), Some("2"));
        assert_eq!(reg.counter("http.panics").get(), 1);
        // The connection closed; later requests on new connections still
        // get monotonically increasing ids.
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        let resp = c.post("/boom", "text/plain", vec![]).unwrap();
        assert_eq!(resp.body, b"handler panicked (request 3)");
        assert_eq!(reg.counter("http.panics").get(), 2);
    }

    #[test]
    fn metrics_endpoints_expose_live_counters() {
        let reg = Registry::new();
        let handle = HttpServer::bind_with(
            "127.0.0.1:0".parse().unwrap(),
            ServerConfig::default().telemetry(reg.clone()),
            |r: &Request| Response::ok("text/plain", r.body.clone()),
        )
        .unwrap();
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        for _ in 0..5 {
            c.post("/x", "text/plain", b"hi".to_vec()).unwrap();
        }
        let resp = c.send(Request::get("/metrics")).unwrap();
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        let samples = sbq_telemetry::expo::parse_text(&text).expect("exposition parses");
        let get = |n: &str| {
            samples
                .iter()
                .find(|s| s.name == n && s.quantile.is_none())
                .unwrap_or_else(|| panic!("missing {n} in:\n{text}"))
                .value
        };
        assert_eq!(get("http_requests_post"), 5.0);
        // The /metrics GET itself was counted before rendering.
        assert!(get("http_requests_get") >= 1.0);
        assert_eq!(get("http_status_2xx"), 5.0);
        assert_eq!(get("http_connections_active"), 1.0);
        assert!(get("http_read_ns_count") >= 5.0);
        assert!(get("http_write_ns_count") >= 5.0);
        assert_eq!(
            get("http_handler_ns_count"),
            5.0,
            "metrics GET skips handler"
        );

        let resp = c.send(Request::get("/metrics.json")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        let json = String::from_utf8(resp.body).unwrap();
        assert!(json.contains("\"http.requests.post\":5"), "{json}");
        assert!(json.contains("\"http.queue_wait_ns\":{"), "{json}");
    }

    #[test]
    fn disabled_telemetry_still_serves_metrics_paths() {
        let handle = HttpServer::bind_with(
            "127.0.0.1:0".parse().unwrap(),
            ServerConfig::default().telemetry(Registry::disabled()),
            |r: &Request| Response::ok("text/plain", r.body.clone()),
        )
        .unwrap();
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        let resp = c.send(Request::get("/metrics")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"# telemetry disabled\n");
        let resp = c.send(Request::get("/metrics.json")).unwrap();
        assert_eq!(resp.body, b"{\"enabled\":false}");
    }

    #[test]
    fn every_response_carries_a_request_id() {
        let handle = echo_server(ServerConfig::default());
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        // Minted on a plain request (monotonic index).
        let resp = c.post("/a", "text/plain", b"x".to_vec()).unwrap();
        assert_eq!(resp.header("x-request-id"), Some("0"));
        // Builtin endpoints carry one too.
        let resp = c.send(Request::get("/metrics")).unwrap();
        assert_eq!(resp.header("x-request-id"), Some("1"));
        // A client-supplied id is echoed, not replaced.
        let mut req = Request::post("/b", "text/plain", b"y".to_vec());
        req.headers
            .push(("X-Request-Id".to_string(), "client-abc-123".to_string()));
        let resp = c.send(req).unwrap();
        assert_eq!(resp.header("x-request-id"), Some("client-abc-123"));
        // A hostile id (oversized) is replaced with a minted one.
        let mut req = Request::post("/c", "text/plain", b"z".to_vec());
        req.headers
            .push(("X-Request-Id".to_string(), "x".repeat(500)));
        let resp = c.send(req).unwrap();
        assert_eq!(resp.header("x-request-id"), Some("3"));
    }

    #[test]
    fn error_responses_carry_a_request_id() {
        let handle = echo_server(ServerConfig::default().max_body_bytes(64));
        let mut s = TcpStream::connect(handle.addr()).unwrap();
        s.write_all(b"POST /x HTTP/1.1\r\nContent-Length: 100000\r\n\r\n")
            .unwrap();
        let mut buf = Vec::new();
        s.read_to_end(&mut buf).unwrap();
        let text = String::from_utf8_lossy(&buf);
        assert!(text.starts_with("HTTP/1.1 413"), "got: {text}");
        assert!(
            text.to_ascii_lowercase().contains("x-request-id:"),
            "{text}"
        );
    }

    #[test]
    fn malformed_trace_header_is_ignored_never_400() {
        let reg = Registry::new();
        let handle = echo_server(ServerConfig::default().telemetry(reg.clone()));
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        for bad in [
            "not-a-context".to_string(),
            String::new(),
            "00-zzzz-yyyy-01".to_string(),
            "x".repeat(10_000), // oversized (but under the header cap)
            "00-00000000000000000000000000000000-0000000000000000-01".to_string(),
        ] {
            let mut req = Request::post("/x", "text/plain", b"hi".to_vec());
            req.headers.push(("X-SBQ-Trace".to_string(), bad));
            let resp = c.send(req).unwrap();
            assert_eq!(resp.status, 200);
            assert_eq!(resp.body, b"hi");
            // No caller context → the server span is a fresh root, and
            // the response still reports it.
            assert!(resp.server_span().is_some());
        }
    }

    #[test]
    fn wellformed_trace_header_is_adopted_and_echoed() {
        let reg = Registry::new();
        let handle = echo_server(ServerConfig::default().telemetry(reg.clone()));
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        let caller = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";
        let mut req = Request::post("/x", "text/plain", b"hi".to_vec());
        req.headers
            .push(("X-SBQ-Trace".to_string(), caller.to_string()));
        let resp = c.send(req).unwrap();
        let span = resp.server_span().expect("server reports its span");
        assert_eq!(span.trace_id, 0x4bf92f3577b34da6a3ce929d0e0e4736);
        assert_ne!(span.span_id, 0x00f067aa0ba902b7, "fresh server span id");
        assert!(span.sampled());
        // The recorded server spans share the caller's trace id. The
        // response is written before the worker finishes recording its
        // spans, so allow the recorder a moment to catch up.
        let deadline = Instant::now() + Duration::from_secs(2);
        let events = loop {
            let events = reg.tracer().snapshot();
            if events.iter().any(|e| e.name == "server.request") || Instant::now() >= deadline {
                break events;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        let req_span = events
            .iter()
            .find(|e| e.name == "server.request")
            .expect("server.request recorded");
        assert_eq!(req_span.trace_id, 0x4bf92f3577b34da6a3ce929d0e0e4736);
        assert_eq!(req_span.parent_id, 0x00f067aa0ba902b7);
        for phase in [
            "server.queue_wait",
            "server.read",
            "server.handler",
            "server.write",
        ] {
            let e = events
                .iter()
                .find(|e| e.name == phase)
                .unwrap_or_else(|| panic!("{phase} missing"));
            assert_eq!(e.trace_id, req_span.trace_id);
            assert_eq!(e.parent_id, req_span.span_id, "{phase} parents on request");
        }
    }

    #[test]
    fn trace_json_endpoint_serves_valid_chrome_json() {
        let reg = Registry::new();
        let handle = echo_server(ServerConfig::default().telemetry(reg.clone()));
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        c.post("/x", "text/plain", b"hi".to_vec()).unwrap();
        let resp = c.send(Request::get("/trace.json")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        let json = String::from_utf8(resp.body).unwrap();
        sbq_telemetry::expo::validate_json(&json).expect("trace.json validates");
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"server.request\""));
        let resp = c.send(Request::get("/trace.txt")).unwrap();
        assert!(String::from_utf8(resp.body)
            .unwrap()
            .contains("server.request"));
    }

    #[test]
    fn disabled_telemetry_trace_json_is_empty_but_valid() {
        let handle = echo_server(ServerConfig::default().telemetry(Registry::disabled()));
        let mut c = HttpClient::connect(handle.addr()).unwrap();
        c.post("/x", "text/plain", b"hi".to_vec()).unwrap();
        let resp = c.send(Request::get("/trace.json")).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body,
            b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
        // Responses still carry request ids with telemetry off.
        assert_eq!(resp.header("x-request-id"), Some("1"));
        // But no span header: there is nothing to stitch.
        assert_eq!(resp.server_span(), None);
    }

    #[test]
    fn wildcard_bind_shutdown_does_not_hang() {
        let mut handle = HttpServer::bind("0.0.0.0:0".parse().unwrap(), |r: &Request| {
            Response::ok("text/plain", r.body.clone())
        })
        .unwrap();
        let t0 = Instant::now();
        handle.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "shutdown hung on wildcard bind"
        );
    }
}
