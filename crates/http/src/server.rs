//! Threaded HTTP server (thread per connection, keep-alive).

use crate::message::{HttpError, Request, Response};
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A running HTTP server. The handler runs on the connection's thread; it
/// must be `Send + Sync` because connections are concurrent.
pub struct HttpServer;

impl HttpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and serves until
    /// the returned handle is dropped or shut down.
    pub fn bind<H>(addr: SocketAddr, handler: H) -> std::io::Result<ServerHandle>
    where
        H: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicU64::new(0));
        let requests = Arc::new(AtomicU64::new(0));
        let handler = Arc::new(handler);

        let stop2 = Arc::clone(&stop);
        let conns2 = Arc::clone(&connections);
        let reqs2 = Arc::clone(&requests);
        let join = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                conns2.fetch_add(1, Ordering::SeqCst);
                let handler = Arc::clone(&handler);
                let reqs = Arc::clone(&reqs2);
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &*handler, &reqs);
                });
            }
        });

        Ok(ServerHandle { addr: local, stop, join: Some(join), connections, requests })
    }
}

fn serve_connection(
    stream: TcpStream,
    handler: &(dyn Fn(&Request) -> Response + Send + Sync),
    requests: &AtomicU64,
) -> Result<(), HttpError> {
    stream.set_nodelay(true).map_err(HttpError::Io)?;
    let mut writer = stream.try_clone().map_err(HttpError::Io)?;
    let mut reader = BufReader::new(stream);
    while let Some(req) = Request::read_from(&mut reader)? {
        requests.fetch_add(1, Ordering::SeqCst);
        let resp = handler(&req);
        writer.write_all(&resp.to_bytes()).map_err(HttpError::Io)?;
        writer.flush().map_err(HttpError::Io)?;
        let close = req
            .header("connection")
            .map(|v| v.eq_ignore_ascii_case("close"))
            .unwrap_or(false);
        if close {
            break;
        }
    }
    Ok(())
}

/// Handle to a running [`HttpServer`]; shuts the accept loop down on drop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
    connections: Arc<AtomicU64>,
    requests: Arc<AtomicU64>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::SeqCst)
    }

    /// Requests served so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::SeqCst)
    }

    /// Stops accepting connections (existing connections drain on their
    /// own threads).
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // unblock accept
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HttpClient;

    #[test]
    fn counts_connections_and_requests() {
        let handle = HttpServer::bind("127.0.0.1:0".parse().unwrap(), |r: &Request| {
            Response::ok("text/plain", r.body.clone())
        })
        .unwrap();
        let mut c1 = HttpClient::connect(handle.addr()).unwrap();
        let mut c2 = HttpClient::connect(handle.addr()).unwrap();
        for _ in 0..3 {
            c1.post("/a", "text/plain", b"x".to_vec()).unwrap();
            c2.post("/b", "text/plain", b"y".to_vec()).unwrap();
        }
        assert_eq!(handle.connections(), 2);
        assert_eq!(handle.requests(), 6);
    }

    #[test]
    fn connection_close_honored() {
        let handle = HttpServer::bind("127.0.0.1:0".parse().unwrap(), |r: &Request| {
            Response::ok("text/plain", r.body.clone())
        })
        .unwrap();
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let mut req = Request::post("/x", "text/plain", b"bye".to_vec());
        req.headers.push(("Connection".to_string(), "close".to_string()));
        let resp = client.send(req).unwrap();
        assert_eq!(resp.body, b"bye");
        // The server closed; the next request fails.
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert!(client.post("/y", "text/plain", b"?".to_vec()).is_err());
    }

    #[test]
    fn shutdown_stops_accepting() {
        let mut handle = HttpServer::bind("127.0.0.1:0".parse().unwrap(), |_: &Request| {
            Response::ok("text/plain", vec![])
        })
        .unwrap();
        let addr = handle.addr();
        handle.shutdown();
        std::thread::sleep(std::time::Duration::from_millis(50));
        // Either connect fails or the request after it fails.
        if let Ok(mut c) = HttpClient::connect(addr) { assert!(c.post("/", "text/plain", vec![]).is_err()) }
    }
}
