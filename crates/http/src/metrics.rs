//! Pre-resolved telemetry handles for the transport hot path.
//!
//! Handles are resolved once at bind time; workers record through them
//! without ever touching the registry maps. Request methods map onto a
//! fixed set of counters so a hostile client cannot mint unbounded
//! metric names.

use sbq_telemetry::{Counter, Gauge, Histogram, Registry};

/// Metric names exposed by the HTTP server (dotted form; the text
/// exposition rewrites dots to underscores).
///
/// | name                  | type      | meaning                                    |
/// |-----------------------|-----------|--------------------------------------------|
/// | `http.requests.get`   | counter   | GET requests parsed                        |
/// | `http.requests.post`  | counter   | POST requests parsed                       |
/// | `http.requests.other` | counter   | requests with any other method             |
/// | `http.status.2xx`.. | counter   | responses by status class (`2xx`..`5xx`, `other`) |
/// | `http.panics`         | counter   | handler panics answered with 500           |
/// | `http.admission.shed` | counter   | requests answered by the admission hook    |
/// | `http.chunked.rx`     | counter   | requests received with chunked framing     |
/// | `http.chunked.tx`     | counter   | responses sent with chunked framing        |
/// | `http.connections.active` | gauge | connections currently open                 |
/// | `http.connections.accepted` | counter | connections accepted over the lifetime |
/// | `http.connections.open` | gauge  | connections currently registered with the reactor |
/// | `http.connections.idle` | gauge  | open connections parked between keep-alive requests |
/// | `http.connections.closed` | counter | connections closed (any reason)          |
/// | `http.requests.inflight`  | gauge | requests currently inside a handler        |
/// | `http.queue_wait_ns`  | histogram | dispatch wait, parsed → CPU-pool pickup    |
/// | `http.read_ns`        | histogram | request parse time (first byte → parsed)   |
/// | `http.write_ns`       | histogram | response write time                        |
/// | `http.handler_ns`     | histogram | handler dispatch time                      |
/// | `http.request_us`     | histogram | end-to-end latency (first byte → response ready); tail buckets carry trace-id exemplars |
/// | `reactor.wakeups`     | counter   | event-loop unparks via the wake pipe       |
/// | `reactor.events`      | counter   | readiness events delivered by `epoll_wait` |
/// | `reactor.timeouts`    | counter   | deadline-wheel expirations acted on        |
///
/// The health subsystem adds `reactor.loop_lag_us` / `reactor.stalled` /
/// `reactor.stalls` (watchdog), `proc.*` (resource accounting), and
/// `slo.*` (burn rates) — see `sbq_telemetry::health`.
pub(crate) struct HttpMetrics {
    get: Counter,
    post: Counter,
    other: Counter,
    status_2xx: Counter,
    status_3xx: Counter,
    status_4xx: Counter,
    status_5xx: Counter,
    status_other: Counter,
    pub(crate) panics: Counter,
    pub(crate) shed: Counter,
    pub(crate) chunked_rx: Counter,
    pub(crate) chunked_tx: Counter,
    pub(crate) active: Gauge,
    pub(crate) accepted: Counter,
    pub(crate) open: Gauge,
    pub(crate) idle: Gauge,
    pub(crate) closed: Counter,
    pub(crate) inflight: Gauge,
    pub(crate) reactor_wakeups: Counter,
    pub(crate) reactor_events: Counter,
    pub(crate) reactor_timeouts: Counter,
    pub(crate) queue_wait: Histogram,
    pub(crate) read: Histogram,
    pub(crate) write: Histogram,
    pub(crate) handler: Histogram,
    pub(crate) request: Histogram,
}

impl HttpMetrics {
    pub(crate) fn new(reg: &Registry) -> HttpMetrics {
        HttpMetrics {
            get: reg.counter("http.requests.get"),
            post: reg.counter("http.requests.post"),
            other: reg.counter("http.requests.other"),
            status_2xx: reg.counter("http.status.2xx"),
            status_3xx: reg.counter("http.status.3xx"),
            status_4xx: reg.counter("http.status.4xx"),
            status_5xx: reg.counter("http.status.5xx"),
            status_other: reg.counter("http.status.other"),
            panics: reg.counter("http.panics"),
            shed: reg.counter("http.admission.shed"),
            chunked_rx: reg.counter("http.chunked.rx"),
            chunked_tx: reg.counter("http.chunked.tx"),
            active: reg.gauge("http.connections.active"),
            accepted: reg.counter("http.connections.accepted"),
            open: reg.gauge("http.connections.open"),
            idle: reg.gauge("http.connections.idle"),
            closed: reg.counter("http.connections.closed"),
            inflight: reg.gauge("http.requests.inflight"),
            reactor_wakeups: reg.counter("reactor.wakeups"),
            reactor_events: reg.counter("reactor.events"),
            reactor_timeouts: reg.counter("reactor.timeouts"),
            queue_wait: reg.histogram("http.queue_wait_ns"),
            read: reg.histogram("http.read_ns"),
            write: reg.histogram("http.write_ns"),
            handler: reg.histogram("http.handler_ns"),
            request: reg.histogram("http.request_us"),
        }
    }

    pub(crate) fn method(&self, method: &str) {
        if method.eq_ignore_ascii_case("GET") {
            self.get.inc();
        } else if method.eq_ignore_ascii_case("POST") {
            self.post.inc();
        } else {
            self.other.inc();
        }
    }

    pub(crate) fn status(&self, status: u16) {
        match status / 100 {
            2 => self.status_2xx.inc(),
            3 => self.status_3xx.inc(),
            4 => self.status_4xx.inc(),
            5 => self.status_5xx.inc(),
            _ => self.status_other.inc(),
        }
    }
}
