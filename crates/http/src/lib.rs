//! A minimal HTTP/1.1 implementation — the transport every SOAP-bin mode
//! uses ("The delay is mainly due to SOAP-bin's use of HTTP for its
//! transactions", §IV-A; the framing overhead this crate adds per message
//! is precisely what that observation is about).
//!
//! Scope: persistent connections, `POST`/`GET`, `Content-Length` bodies
//! (no chunked encoding — SOAP messages know their length), byte bodies
//! with any content type (`text/xml` for classic SOAP, the
//! `application/pbio` type defined in [`PBIO_CONTENT_TYPE`] for SOAP-bin).

pub mod message;
pub mod server;

pub use message::{HttpError, Request, Response};
pub use server::{HttpServer, ServerHandle};

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// Content type used for binary (PBIO-encoded) SOAP parameter payloads.
pub const PBIO_CONTENT_TYPE: &str = "application/pbio";
/// Content type used for textual SOAP envelopes.
pub const XML_CONTENT_TYPE: &str = "text/xml; charset=utf-8";

/// A blocking HTTP/1.1 client holding one persistent connection.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
}

impl HttpClient {
    /// Connects to an HTTP server.
    pub fn connect(addr: SocketAddr) -> Result<HttpClient, HttpError> {
        let stream = TcpStream::connect(addr).map_err(HttpError::Io)?;
        stream.set_nodelay(true).map_err(HttpError::Io)?;
        let writer = stream.try_clone().map_err(HttpError::Io)?;
        Ok(HttpClient { reader: BufReader::new(stream), writer, host: addr.to_string() })
    }

    /// Sends a request and blocks for the response (keep-alive).
    pub fn send(&mut self, mut req: Request) -> Result<Response, HttpError> {
        if !req.has_header("host") {
            req.headers.push(("Host".to_string(), self.host.clone()));
        }
        let bytes = req.to_bytes();
        self.writer.write_all(&bytes).map_err(HttpError::Io)?;
        self.writer.flush().map_err(HttpError::Io)?;
        Response::read_from(&mut self.reader)
    }

    /// Convenience: POST `body` with the given content type.
    pub fn post(
        &mut self,
        path: &str,
        content_type: &str,
        body: Vec<u8>,
    ) -> Result<Response, HttpError> {
        self.send(Request::post(path, content_type, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_server_round_trip() {
        let handle = HttpServer::bind("127.0.0.1:0".parse().unwrap(), |req: &Request| {
            assert_eq!(req.method, "POST");
            let mut resp = Response::ok(XML_CONTENT_TYPE, req.body.clone());
            resp.headers.push(("X-Echo-Path".to_string(), req.path.clone()));
            resp
        })
        .unwrap();
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let resp = client.post("/svc", XML_CONTENT_TYPE, b"<a>1</a>".to_vec()).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"<a>1</a>");
        assert_eq!(resp.header("x-echo-path"), Some("/svc"));
    }

    #[test]
    fn keep_alive_reuses_connection() {
        let handle = HttpServer::bind("127.0.0.1:0".parse().unwrap(), |req: &Request| {
            Response::ok("text/plain", req.body.clone())
        })
        .unwrap();
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        for i in 0..20 {
            let body = format!("msg {i}").into_bytes();
            let resp = client.post("/x", "text/plain", body.clone()).unwrap();
            assert_eq!(resp.body, body);
        }
        assert_eq!(handle.connections(), 1);
    }

    #[test]
    fn binary_bodies_survive() {
        let handle = HttpServer::bind("127.0.0.1:0".parse().unwrap(), |req: &Request| {
            Response::ok(PBIO_CONTENT_TYPE, req.body.iter().rev().copied().collect())
        })
        .unwrap();
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let body: Vec<u8> = (0..=255).collect();
        let resp = client.post("/bin", PBIO_CONTENT_TYPE, body.clone()).unwrap();
        let expect: Vec<u8> = body.into_iter().rev().collect();
        assert_eq!(resp.body, expect);
    }

    #[test]
    fn large_bodies_round_trip() {
        let handle = HttpServer::bind("127.0.0.1:0".parse().unwrap(), |req: &Request| {
            Response::ok(PBIO_CONTENT_TYPE, req.body.clone())
        })
        .unwrap();
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let body = vec![0xabu8; 1_000_000];
        let resp = client.post("/big", PBIO_CONTENT_TYPE, body.clone()).unwrap();
        assert_eq!(resp.body.len(), body.len());
        assert_eq!(resp.body, body);
    }

    #[test]
    fn concurrent_clients_served() {
        let handle = HttpServer::bind("127.0.0.1:0".parse().unwrap(), |req: &Request| {
            Response::ok("text/plain", req.body.clone())
        })
        .unwrap();
        let addr = handle.addr();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = HttpClient::connect(addr).unwrap();
                    let body = format!("thread {i}").into_bytes();
                    let r = c.post("/t", "text/plain", body.clone()).unwrap();
                    assert_eq!(r.body, body);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }
}
