//! A minimal HTTP/1.1 implementation — the transport every SOAP-bin mode
//! uses ("The delay is mainly due to SOAP-bin's use of HTTP for its
//! transactions", §IV-A; the framing overhead this crate adds per message
//! is precisely what that observation is about).
//!
//! Scope: persistent connections, `POST`/`GET`, strict `Content-Length`
//! bodies and `Transfer-Encoding: chunked` streaming (see [`body`]), byte
//! bodies with any content type (`text/xml` for classic SOAP, the
//! `application/pbio` type defined in [`PBIO_CONTENT_TYPE`] for SOAP-bin).
//! Both ends always *accept* both framings; *sending* chunked is opt-in
//! above a configured threshold ([`ClientConfig::chunk_threshold`],
//! [`ServerConfig::chunk_threshold`]), which keeps large imaging and
//! visualization payloads streaming through transient buffers bounded by
//! the chunk size instead of the body size.
//!
//! The server is event-driven: a single reactor thread multiplexes every
//! connection over `epoll` readiness while handlers run on a small fixed
//! CPU pool (see [`server`]), so thousands of idle keep-alive connections
//! cost zero threads. Both ends are configured through [`ServerConfig`]
//! and [`ClientConfig`], and resilience tests inject response faults and
//! partial-I/O shaping through [`FaultSchedule`].
//!
//! The server is instrumented with `sbq-telemetry` (request/status
//! counters, queue-wait and stage histograms) and exposes its registry
//! over the reserved paths `GET /metrics` and `GET /metrics.json`; see
//! [`ServerConfig::telemetry`]. A built-in runtime health subsystem
//! (reactor loop-lag watchdog, SLO burn rates, `/proc` resource
//! accounting) serves `GET /healthz`, `GET /statusz`, and
//! `GET /profile.json`; see [`ServerConfig::health`].

pub mod body;
pub mod faults;
pub mod message;
mod metrics;
pub mod server;

pub use body::{
    peak_framing_buffer, reset_peak_framing_buffer, BodyFraming, BodyReader, BodyState, ChunkPolicy,
};
pub use faults::{FaultAction, FaultSchedule};
pub use message::{HttpError, Limits, Request, Response, TimeoutKind};
pub use server::{Admission, AdmissionHook, HttpServer, ServerConfig, ServerHandle, ServerLoad};

use message::DEFAULT_IO_TIMEOUT;
use sbq_runtime::BufferPool;
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Content type used for binary (PBIO-encoded) SOAP parameter payloads.
pub const PBIO_CONTENT_TYPE: &str = "application/pbio";
/// Content type used for textual SOAP envelopes.
pub const XML_CONTENT_TYPE: &str = "text/xml; charset=utf-8";

/// Client-side transport configuration; construct with
/// [`ClientConfig::default`] and refine with the consuming builder
/// methods. `None` timeouts mean "wait forever".
#[derive(Debug, Clone)]
pub struct ClientConfig {
    connect_timeout: Option<Duration>,
    read_timeout: Option<Duration>,
    write_timeout: Option<Duration>,
    limits: Limits,
    chunking: ChunkPolicy,
    pool: BufferPool,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            connect_timeout: Some(Duration::from_secs(10)),
            read_timeout: Some(DEFAULT_IO_TIMEOUT),
            write_timeout: Some(DEFAULT_IO_TIMEOUT),
            limits: Limits::default(),
            chunking: ChunkPolicy::disabled(),
            pool: BufferPool::global().clone(),
        }
    }
}

impl ClientConfig {
    /// Deadline for establishing the TCP connection.
    pub fn connect_timeout(mut self, d: Duration) -> ClientConfig {
        self.connect_timeout = Some(d);
        self
    }

    /// Per-read deadline while waiting for a response.
    pub fn read_timeout(mut self, d: Duration) -> ClientConfig {
        self.read_timeout = Some(d);
        self
    }

    /// Per-write deadline while sending a request.
    pub fn write_timeout(mut self, d: Duration) -> ClientConfig {
        self.write_timeout = Some(d);
        self
    }

    /// Removes every deadline (block indefinitely on I/O).
    pub fn no_timeouts(mut self) -> ClientConfig {
        self.connect_timeout = None;
        self.read_timeout = None;
        self.write_timeout = None;
        self
    }

    /// Cap on response header bytes.
    pub fn max_header_bytes(mut self, n: usize) -> ClientConfig {
        self.limits.max_header_bytes = n;
        self
    }

    /// Cap on response body bytes (declared `Content-Length`, or the
    /// running chunked total).
    pub fn max_body_bytes(mut self, n: usize) -> ClientConfig {
        self.limits.max_body_bytes = n;
        self
    }

    /// Opt in to `Transfer-Encoding: chunked` for request bodies of at
    /// least `threshold` bytes (off by default — smaller SOAP messages
    /// know their length and keep `Content-Length` framing).
    pub fn chunk_threshold(mut self, threshold: usize) -> ClientConfig {
        self.chunking = ChunkPolicy::above(threshold).chunk_size(self.chunking.chunk_bytes());
        self
    }

    /// Chunk size used when chunking applies (default
    /// [`ChunkPolicy::DEFAULT_CHUNK_SIZE`]); it bounds the receiver's
    /// per-chunk transient buffer.
    pub fn chunk_size(mut self, n: usize) -> ClientConfig {
        self.chunking = self.chunking.chunk_size(n);
        self
    }

    /// Body-buffer pool the client recycles request bodies into and
    /// reads response bodies from (default: the process-wide shared
    /// pool). Share one pool across clients to cap total held memory.
    pub fn buffer_pool(mut self, pool: BufferPool) -> ClientConfig {
        self.pool = pool;
        self
    }

    /// The configured body-buffer pool.
    pub fn buffer_pool_ref(&self) -> &BufferPool {
        &self.pool
    }
}

/// A blocking HTTP/1.1 client holding one persistent connection.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    host: String,
    limits: Limits,
    chunking: ChunkPolicy,
    pool: BufferPool,
}

impl HttpClient {
    /// Connects to an HTTP server with the default [`ClientConfig`].
    pub fn connect(addr: SocketAddr) -> Result<HttpClient, HttpError> {
        Self::connect_with(addr, &ClientConfig::default())
    }

    /// Connects to an HTTP server with explicit configuration.
    pub fn connect_with(addr: SocketAddr, config: &ClientConfig) -> Result<HttpClient, HttpError> {
        let stream = match config.connect_timeout {
            Some(d) => TcpStream::connect_timeout(&addr, d)
                .map_err(|e| HttpError::from_io(e, TimeoutKind::Connect))?,
            None => TcpStream::connect(addr).map_err(HttpError::Transport)?,
        };
        stream.set_nodelay(true).map_err(HttpError::Transport)?;
        stream
            .set_read_timeout(config.read_timeout)
            .map_err(HttpError::Transport)?;
        stream
            .set_write_timeout(config.write_timeout)
            .map_err(HttpError::Transport)?;
        let writer = stream.try_clone().map_err(HttpError::Transport)?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
            writer,
            host: addr.to_string(),
            limits: config.limits,
            chunking: config.chunking,
            pool: config.pool.clone(),
        })
    }

    /// Sends a request and blocks for the response (keep-alive). The
    /// request is streamed: bodies above the configured chunk threshold go
    /// out as `Transfer-Encoding: chunked`, and no framing buffer beyond
    /// one chunk is ever allocated. The request body is recycled into the
    /// client's buffer pool after the write, and the response body is
    /// read into a pooled buffer — a warmed-up call loop allocates no
    /// body memory.
    pub fn send(&mut self, mut req: Request) -> Result<Response, HttpError> {
        if !req.has_header("host") {
            req.headers.push(("Host".to_string(), self.host.clone()));
        }
        req.write_to(&mut self.writer, &self.chunking)
            .map_err(|e| HttpError::from_io(e, TimeoutKind::Write))?;
        self.pool.put(std::mem::take(&mut req.body));
        Response::read_from_pooled(&mut self.reader, &self.limits, &self.pool)
    }

    /// The buffer pool this client recycles bodies through.
    pub fn buffer_pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Convenience: POST `body` with the given content type.
    pub fn post(
        &mut self,
        path: &str,
        content_type: &str,
        body: Vec<u8>,
    ) -> Result<Response, HttpError> {
        self.send(Request::post(path, content_type, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_server_round_trip() {
        let handle = HttpServer::bind("127.0.0.1:0".parse().unwrap(), |req: &Request| {
            assert_eq!(req.method, "POST");
            let mut resp = Response::ok(XML_CONTENT_TYPE, req.body.clone());
            resp.headers
                .push(("X-Echo-Path".to_string(), req.path.clone()));
            resp
        })
        .unwrap();
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let resp = client
            .post("/svc", XML_CONTENT_TYPE, b"<a>1</a>".to_vec())
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"<a>1</a>");
        assert_eq!(resp.header("x-echo-path"), Some("/svc"));
    }

    #[test]
    fn keep_alive_reuses_connection() {
        let handle = HttpServer::bind("127.0.0.1:0".parse().unwrap(), |req: &Request| {
            Response::ok("text/plain", req.body.clone())
        })
        .unwrap();
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        for i in 0..20 {
            let body = format!("msg {i}").into_bytes();
            let resp = client.post("/x", "text/plain", body.clone()).unwrap();
            assert_eq!(resp.body, body);
        }
        assert_eq!(handle.connections(), 1);
    }

    #[test]
    fn binary_bodies_survive() {
        let handle = HttpServer::bind("127.0.0.1:0".parse().unwrap(), |req: &Request| {
            Response::ok(PBIO_CONTENT_TYPE, req.body.iter().rev().copied().collect())
        })
        .unwrap();
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let body: Vec<u8> = (0..=255).collect();
        let resp = client
            .post("/bin", PBIO_CONTENT_TYPE, body.clone())
            .unwrap();
        let expect: Vec<u8> = body.into_iter().rev().collect();
        assert_eq!(resp.body, expect);
    }

    #[test]
    fn large_bodies_round_trip() {
        let handle = HttpServer::bind("127.0.0.1:0".parse().unwrap(), |req: &Request| {
            Response::ok(PBIO_CONTENT_TYPE, req.body.clone())
        })
        .unwrap();
        let mut client = HttpClient::connect(handle.addr()).unwrap();
        let body = vec![0xabu8; 1_000_000];
        let resp = client
            .post("/big", PBIO_CONTENT_TYPE, body.clone())
            .unwrap();
        assert_eq!(resp.body.len(), body.len());
        assert_eq!(resp.body, body);
    }

    #[test]
    fn concurrent_clients_served() {
        let handle = HttpServer::bind("127.0.0.1:0".parse().unwrap(), |req: &Request| {
            Response::ok("text/plain", req.body.clone())
        })
        .unwrap();
        let addr = handle.addr();
        let threads: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = HttpClient::connect(addr).unwrap();
                    let body = format!("thread {i}").into_bytes();
                    let r = c.post("/t", "text/plain", body.clone()).unwrap();
                    assert_eq!(r.body, body);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    fn chunked_round_trip_both_directions() {
        // Server: chunked responses above 1 KiB; it must also *accept*
        // chunked requests. Client: chunked requests above 1 KiB. The
        // payload round-trips unchanged, and both peers saw chunked wire
        // framing (asserted via the server metrics counters).
        let reg = sbq_telemetry::Registry::new();
        let handle = HttpServer::bind_with(
            "127.0.0.1:0".parse().unwrap(),
            ServerConfig::default()
                .telemetry(reg.clone())
                .chunk_threshold(1024)
                .chunk_size(4096),
            |req: &Request| {
                if req.body.len() > 1024 {
                    assert!(
                        req.header("transfer-encoding").is_some(),
                        "large request should have arrived chunked"
                    );
                }
                Response::ok(PBIO_CONTENT_TYPE, req.body.clone())
            },
        )
        .unwrap();
        let config = ClientConfig::default()
            .chunk_threshold(1024)
            .chunk_size(2048);
        let mut client = HttpClient::connect_with(handle.addr(), &config).unwrap();
        let body: Vec<u8> = (0..100_000u32).map(|i| (i * 31 % 251) as u8).collect();
        let resp = client
            .post("/big", PBIO_CONTENT_TYPE, body.clone())
            .unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("transfer-encoding"), Some("chunked"));
        assert!(resp.header("content-length").is_none());
        assert_eq!(resp.body, body);
        assert_eq!(reg.counter("http.chunked.rx").get(), 1);
        assert_eq!(reg.counter("http.chunked.tx").get(), 1);

        // A small message on the same connection stays Content-Length
        // framed, proving the connection is still in sync after chunks.
        let resp = client.post("/small", "text/plain", b"x".to_vec()).unwrap();
        assert_eq!(resp.body, b"x");
        assert_eq!(resp.header("content-length"), Some("1"));
    }

    #[test]
    fn bad_content_length_gets_400_not_desync() {
        let handle = HttpServer::bind("127.0.0.1:0".parse().unwrap(), |req: &Request| {
            Response::ok("text/plain", req.body.clone())
        })
        .unwrap();
        for bad in ["-5", "banana", "1x", ""] {
            let mut s = std::net::TcpStream::connect(handle.addr()).unwrap();
            use std::io::{Read, Write};
            s.write_all(format!("POST /x HTTP/1.1\r\nContent-Length: {bad}\r\n\r\n").as_bytes())
                .unwrap();
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).unwrap();
            let text = String::from_utf8_lossy(&buf);
            assert!(text.starts_with("HTTP/1.1 400"), "CL {bad:?} got: {text}");
        }
    }

    #[test]
    fn client_read_timeout_fires() {
        let handle = HttpServer::bind_with(
            "127.0.0.1:0".parse().unwrap(),
            ServerConfig::default().faults(
                FaultSchedule::new().at(0, FaultAction::DelayResponse(Duration::from_millis(400))),
            ),
            |req: &Request| Response::ok("text/plain", req.body.clone()),
        )
        .unwrap();
        let config = ClientConfig::default().read_timeout(Duration::from_millis(80));
        let mut client = HttpClient::connect_with(handle.addr(), &config).unwrap();
        let err = client
            .post("/slow", "text/plain", b"x".to_vec())
            .unwrap_err();
        assert!(
            matches!(err, HttpError::Timeout(TimeoutKind::Read)),
            "{err}"
        );
    }

    #[test]
    fn client_response_body_limit_enforced() {
        let handle = HttpServer::bind("127.0.0.1:0".parse().unwrap(), |_req: &Request| {
            Response::ok("text/plain", vec![b'z'; 4096])
        })
        .unwrap();
        let config = ClientConfig::default().max_body_bytes(100);
        let mut client = HttpClient::connect_with(handle.addr(), &config).unwrap();
        let err = client.post("/big", "text/plain", vec![]).unwrap_err();
        assert!(
            matches!(
                err,
                HttpError::TooLarge {
                    what: "body",
                    limit: 100
                }
            ),
            "{err}"
        );
    }
}
