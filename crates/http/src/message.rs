//! HTTP request/response types, serialization and parsing.

use std::io::BufRead;

/// HTTP-layer errors.
#[derive(Debug)]
pub enum HttpError {
    /// Socket failure.
    Io(std::io::Error),
    /// Malformed request/status line or headers.
    Malformed(String),
    /// Header section exceeded the size limit.
    TooLarge,
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "http io error: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed http: {m}"),
            HttpError::TooLarge => write!(f, "http header section too large"),
        }
    }
}

impl std::error::Error for HttpError {}

const MAX_HEADER_BYTES: usize = 16 * 1024;
const MAX_BODY_BYTES: usize = 256 * 1024 * 1024;

/// An HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method (`POST`, `GET`, …).
    pub method: String,
    /// Request target (path).
    pub path: String,
    /// Header name/value pairs in order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// A POST request with a body; `Content-Type`, `Content-Length` and
    /// `SOAPAction` headers are set the way the reproduced stack sends
    /// them.
    pub fn post(path: &str, content_type: &str, body: Vec<u8>) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: vec![
                ("Content-Type".to_string(), content_type.to_string()),
                ("Content-Length".to_string(), body.len().to_string()),
                ("SOAPAction".to_string(), format!("\"{path}\"")),
            ],
            body,
        }
    }

    /// A bodyless GET request.
    pub fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            headers: vec![("Content-Length".to_string(), "0".to_string())],
            body: Vec::new(),
        }
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether a header is present (case-insensitive).
    pub fn has_header(&self, name: &str) -> bool {
        self.header(name).is_some()
    }

    /// Serializes for the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 256);
        out.extend_from_slice(format!("{} {} HTTP/1.1\r\n", self.method, self.path).as_bytes());
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Total on-the-wire size — the HTTP overhead the benchmarks charge.
    pub fn wire_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Reads one request from a buffered stream. Returns `Ok(None)` on a
    /// cleanly closed connection (keep-alive loop end).
    pub fn read_from(r: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
        let Some(line) = read_line(r)? else { return Ok(None) };
        let mut parts = line.split_whitespace();
        let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(HttpError::Malformed(format!("bad request line: {line:?}")));
        };
        if !version.starts_with("HTTP/1.") {
            return Err(HttpError::Malformed(format!("bad version: {version:?}")));
        }
        let headers = read_headers(r)?;
        let body = read_body(r, &headers)?;
        Ok(Some(Request {
            method: method.to_string(),
            path: path.to_string(),
            headers,
            body,
        }))
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Header pairs.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` response with a body.
    pub fn ok(content_type: &str, body: Vec<u8>) -> Response {
        Response::with_status(200, "OK", content_type, body)
    }

    /// An arbitrary-status response.
    pub fn with_status(status: u16, reason: &str, content_type: &str, body: Vec<u8>) -> Response {
        Response {
            status,
            reason: reason.to_string(),
            headers: vec![
                ("Content-Type".to_string(), content_type.to_string()),
                ("Content-Length".to_string(), body.len().to_string()),
            ],
            body,
        }
    }

    /// A `500` SOAP-fault-style response.
    pub fn server_error(body: Vec<u8>) -> Response {
        Response::with_status(500, "Internal Server Error", "text/xml; charset=utf-8", body)
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Serializes for the wire.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes());
        for (k, v) in &self.headers {
            out.extend_from_slice(format!("{k}: {v}\r\n").as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }

    /// Total on-the-wire size.
    pub fn wire_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Reads one response from a buffered stream.
    pub fn read_from(r: &mut impl BufRead) -> Result<Response, HttpError> {
        let line = read_line(r)?
            .ok_or_else(|| HttpError::Malformed("connection closed before response".into()))?;
        let mut parts = line.splitn(3, ' ');
        let _version = parts.next().unwrap_or_default();
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| HttpError::Malformed(format!("bad status line: {line:?}")))?;
        let reason = parts.next().unwrap_or("").to_string();
        let headers = read_headers(r)?;
        let body = read_body(r, &headers)?;
        Ok(Response { status, reason, headers, body })
    }
}

fn read_line(r: &mut impl BufRead) -> Result<Option<String>, HttpError> {
    let mut line = String::new();
    let n = r.read_line(&mut line).map_err(HttpError::Io)?;
    if n == 0 {
        return Ok(None);
    }
    if line.len() > MAX_HEADER_BYTES {
        return Err(HttpError::TooLarge);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

fn read_headers(r: &mut impl BufRead) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    let mut total = 0usize;
    loop {
        let line = read_line(r)?
            .ok_or_else(|| HttpError::Malformed("eof in headers".into()))?;
        if line.is_empty() {
            return Ok(headers);
        }
        total += line.len();
        if total > MAX_HEADER_BYTES {
            return Err(HttpError::TooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header: {line:?}")))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
}

fn read_body(r: &mut impl BufRead, headers: &[(String, String)]) -> Result<Vec<u8>, HttpError> {
    let len: usize = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    if len > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge);
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(HttpError::Io)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_round_trips() {
        let req = Request::post("/svc", "text/xml", b"<x/>".to_vec());
        let bytes = req.to_bytes();
        let parsed = Request::read_from(&mut BufReader::new(&bytes[..])).unwrap().unwrap();
        assert_eq!(parsed.method, "POST");
        assert_eq!(parsed.path, "/svc");
        assert_eq!(parsed.body, b"<x/>");
        assert_eq!(parsed.header("content-type"), Some("text/xml"));
        assert_eq!(parsed.header("CONTENT-LENGTH"), Some("4"));
    }

    #[test]
    fn response_round_trips() {
        let resp = Response::ok("application/pbio", vec![1, 2, 3]);
        let bytes = resp.to_bytes();
        let parsed = Response::read_from(&mut BufReader::new(&bytes[..])).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.reason, "OK");
        assert_eq!(parsed.body, vec![1, 2, 3]);
    }

    #[test]
    fn eof_before_request_is_clean_close() {
        let empty: &[u8] = b"";
        assert!(Request::read_from(&mut BufReader::new(empty)).unwrap().is_none());
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "GARBAGE\r\n\r\n",
            "POST /x HTTP/1.1\r\nno-colon-header\r\n\r\n",
            "POST /x\r\n\r\n",
            "POST /x FTP/1.0\r\n\r\n",
        ] {
            let res = Request::read_from(&mut BufReader::new(bad.as_bytes()));
            assert!(res.is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn oversized_headers_rejected() {
        let huge = format!("POST /x HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(20_000));
        assert!(matches!(
            Request::read_from(&mut BufReader::new(huge.as_bytes())),
            Err(HttpError::TooLarge)
        ));
    }

    #[test]
    fn wire_len_counts_headers_and_body() {
        let req = Request::post("/s", "text/xml", vec![0; 100]);
        assert!(req.wire_len() > 100 + 50);
        let overhead = req.wire_len() - 100;
        // The HTTP framing overhead SOAP pays per message: order 10^2 B.
        assert!((60..400).contains(&overhead), "overhead {overhead}");
    }

    #[test]
    fn get_has_no_body() {
        let req = Request::get("/wsdl");
        let parsed =
            Request::read_from(&mut BufReader::new(&req.to_bytes()[..])).unwrap().unwrap();
        assert_eq!(parsed.method, "GET");
        assert!(parsed.body.is_empty());
    }
}
