//! HTTP request/response types, serialization and parsing.

use crate::body::{self, BodyReader, ChunkPolicy};
use sbq_runtime::BufferPool;
use std::io::{BufRead, Write};
use std::time::Duration;

/// Which deadline a [`HttpError::Timeout`] missed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutKind {
    /// TCP connect did not complete in time.
    Connect,
    /// Reading a request/response exceeded the read timeout.
    Read,
    /// Writing a request/response exceeded the write timeout.
    Write,
    /// A keep-alive connection sat idle past the idle timeout.
    Idle,
}

impl std::fmt::Display for TimeoutKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TimeoutKind::Connect => "connect",
            TimeoutKind::Read => "read",
            TimeoutKind::Write => "write",
            TimeoutKind::Idle => "idle",
        })
    }
}

/// HTTP-layer errors, split by what the caller can do about them:
/// [`HttpError::Timeout`] and [`HttpError::Transport`] are retryable with a
/// fresh connection, [`HttpError::Protocol`] and [`HttpError::TooLarge`]
/// are not.
#[derive(Debug)]
pub enum HttpError {
    /// Socket-level failure (refused, reset, broken pipe, …).
    Transport(std::io::Error),
    /// A configured deadline elapsed.
    Timeout(TimeoutKind),
    /// The peer spoke something that is not the HTTP we accept.
    Protocol(String),
    /// A message exceeded a configured size limit.
    TooLarge {
        /// Which part overflowed (`"header"` or `"body"`).
        what: &'static str,
        /// The limit in bytes that was exceeded.
        limit: usize,
    },
}

impl HttpError {
    /// Maps an I/O error, classifying timeout-ish kinds (`WouldBlock`,
    /// `TimedOut`) as [`HttpError::Timeout`] of the given kind.
    pub fn from_io(e: std::io::Error, kind: TimeoutKind) -> HttpError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                HttpError::Timeout(kind)
            }
            _ => HttpError::Transport(e),
        }
    }

    /// Whether a retry on a fresh connection could plausibly succeed
    /// *without risking a duplicate execution*: only failures where the
    /// request provably never completed qualify. A garbled or truncated
    /// response ([`HttpError::Protocol`]) is **not** retryable here — the
    /// server may well have executed the call before dying mid-write, and
    /// replaying a non-idempotent operation would execute it twice.
    pub fn is_retryable(&self) -> bool {
        matches!(self, HttpError::Transport(_) | HttpError::Timeout(_))
    }

    /// Whether a retry could plausibly succeed *when the caller declares
    /// the operation idempotent*: everything in [`is_retryable`] plus
    /// [`HttpError::Protocol`] — a truncated/garbled response usually
    /// means the server died mid-write, and an idempotent call is safe to
    /// replay even if it did execute.
    ///
    /// [`is_retryable`]: HttpError::is_retryable
    pub fn is_retryable_when_idempotent(&self) -> bool {
        self.is_retryable() || matches!(self, HttpError::Protocol(_))
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Transport(e) => write!(f, "http transport error: {e}"),
            HttpError::Timeout(k) => write!(f, "http {k} timeout"),
            HttpError::Protocol(m) => write!(f, "http protocol error: {m}"),
            HttpError::TooLarge { what, limit } => {
                write!(f, "http {what} exceeds limit of {limit} bytes")
            }
        }
    }
}

impl std::error::Error for HttpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HttpError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

/// Message-size limits enforced while parsing. Every limit is enforced
/// *incrementally*: no input can make the parser buffer beyond it before
/// the check fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Cap on the request/status line plus the header section.
    pub max_header_bytes: usize,
    /// Cap on the body: the declared `Content-Length`, or the running
    /// total of decoded chunk data for chunked bodies.
    pub max_body_bytes: usize,
    /// Cap on any single declared chunk in a chunked body.
    pub max_chunk_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 256 * 1024 * 1024,
            max_chunk_bytes: 4 * 1024 * 1024,
        }
    }
}

/// Default timeout used where a caller does not configure one.
pub(crate) const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// An HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method (`POST`, `GET`, …).
    pub method: String,
    /// Request target (path).
    pub path: String,
    /// Header name/value pairs in order.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// A POST request with a body; `Content-Type`, `Content-Length` and
    /// `SOAPAction` headers are set the way the reproduced stack sends
    /// them.
    pub fn post(path: &str, content_type: &str, body: Vec<u8>) -> Request {
        Request {
            method: "POST".to_string(),
            path: path.to_string(),
            headers: vec![
                ("Content-Type".to_string(), content_type.to_string()),
                ("Content-Length".to_string(), body.len().to_string()),
                ("SOAPAction".to_string(), format!("\"{path}\"")),
            ],
            body,
        }
    }

    /// A bodyless GET request.
    pub fn get(path: &str) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            headers: vec![("Content-Length".to_string(), "0".to_string())],
            body: Vec::new(),
        }
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Whether a header is present (case-insensitive).
    pub fn has_header(&self, name: &str) -> bool {
        self.header(name).is_some()
    }

    /// The caller's trace context from the `X-SBQ-Trace` header, if one
    /// is present and well-formed. Malformed or oversized values yield
    /// `None` — propagation is best-effort and never rejects a request.
    pub fn trace_context(&self) -> Option<sbq_telemetry::TraceContext> {
        sbq_telemetry::TraceContext::parse(self.header(sbq_telemetry::trace::TRACE_HEADER)?)
    }

    /// Serializes for the wire with `Content-Length` framing,
    /// materializing the whole message (head plus a body copy). Prefer
    /// [`Request::write_to`] on the transmit path — it streams the body
    /// from `self` without this second copy.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 256);
        write_framed_request(&mut out, self, &ChunkPolicy::disabled()).expect("Vec write");
        out
    }

    /// Streams this request to `w`: small head buffer, body written from
    /// `self.body` directly — whole under `Content-Length` framing, in
    /// bounded slices as `Transfer-Encoding: chunked` when `policy`
    /// applies to the body size.
    pub fn write_to(&self, w: &mut impl Write, policy: &ChunkPolicy) -> std::io::Result<()> {
        write_framed_request(w, self, policy)
    }

    /// Total on-the-wire size — the HTTP overhead the benchmarks charge.
    pub fn wire_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Reads one request with default [`Limits`]. Returns `Ok(None)` on a
    /// cleanly closed connection (keep-alive loop end).
    pub fn read_from(r: &mut impl BufRead) -> Result<Option<Request>, HttpError> {
        Request::read_from_with(r, &Limits::default())
    }

    /// Reads one request from a buffered stream, enforcing `limits`.
    /// Returns `Ok(None)` on a cleanly closed connection.
    pub fn read_from_with(
        r: &mut impl BufRead,
        limits: &Limits,
    ) -> Result<Option<Request>, HttpError> {
        Request::read_from_inner(r, limits, None)
    }

    /// Like [`Request::read_from_with`], but the body lands in a buffer
    /// taken from `pool` (zero allocations once the pool is warm).
    pub fn read_from_pooled(
        r: &mut impl BufRead,
        limits: &Limits,
        pool: &BufferPool,
    ) -> Result<Option<Request>, HttpError> {
        Request::read_from_inner(r, limits, Some(pool))
    }

    fn read_from_inner(
        r: &mut impl BufRead,
        limits: &Limits,
        pool: Option<&BufferPool>,
    ) -> Result<Option<Request>, HttpError> {
        let Some(head) = read_request_head(r, limits)? else {
            return Ok(None);
        };
        let body = read_body(r, &head.headers, limits, pool)?;
        Ok(Some(Request {
            method: head.method,
            path: head.path,
            headers: head.headers,
            body,
        }))
    }
}

/// Request line plus header section — everything before the body. The
/// event-driven server parses the head as soon as the blank line arrives
/// and switches to incremental body decoding from there.
#[derive(Debug)]
pub(crate) struct RequestHead {
    pub method: String,
    pub path: String,
    pub headers: Vec<(String, String)>,
}

/// Reads one request head (request line + headers through the blank
/// line), enforcing `limits`. Returns `Ok(None)` on a cleanly closed
/// connection before the first byte.
pub(crate) fn read_request_head(
    r: &mut impl BufRead,
    limits: &Limits,
) -> Result<Option<RequestHead>, HttpError> {
    let Some(line) = read_line(r, limits)? else {
        return Ok(None);
    };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::Protocol(format!("bad request line: {line:?}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Protocol(format!("bad version: {version:?}")));
    }
    let method = method.to_string();
    let path = path.to_string();
    let headers = read_headers(r, limits)?;
    Ok(Some(RequestHead {
        method,
        path,
        headers,
    }))
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Header pairs.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A `200 OK` response with a body.
    pub fn ok(content_type: &str, body: Vec<u8>) -> Response {
        Response::with_status(200, "OK", content_type, body)
    }

    /// An arbitrary-status response.
    pub fn with_status(status: u16, reason: &str, content_type: &str, body: Vec<u8>) -> Response {
        Response {
            status,
            reason: reason.to_string(),
            headers: vec![
                ("Content-Type".to_string(), content_type.to_string()),
                ("Content-Length".to_string(), body.len().to_string()),
            ],
            body,
        }
    }

    /// A `500` SOAP-fault-style response.
    pub fn server_error(body: Vec<u8>) -> Response {
        Response::with_status(
            500,
            "Internal Server Error",
            "text/xml; charset=utf-8",
            body,
        )
    }

    /// The server's span context from the `X-SBQ-Span` response header,
    /// if present and well-formed — what lets a client stitch the
    /// server's subtree under its own root span.
    pub fn server_span(&self) -> Option<sbq_telemetry::TraceContext> {
        sbq_telemetry::TraceContext::parse(self.header(sbq_telemetry::trace::SPAN_HEADER)?)
    }

    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Serializes for the wire with `Content-Length` framing,
    /// materializing the whole message. Prefer [`Response::write_to`] on
    /// the transmit path.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_wire_bytes(&ChunkPolicy::disabled())
    }

    /// Serializes with the given chunking policy applied (used by the
    /// fault-injection write path, which needs the framed bytes to
    /// truncate them).
    pub fn to_wire_bytes(&self, policy: &ChunkPolicy) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.body.len() + 128);
        write_framed_response(&mut out, self, policy).expect("Vec write");
        out
    }

    /// Streams this response to `w`: small head buffer, body written from
    /// `self.body` directly — whole under `Content-Length` framing, in
    /// bounded slices as `Transfer-Encoding: chunked` when `policy`
    /// applies to the body size.
    pub fn write_to(&self, w: &mut impl Write, policy: &ChunkPolicy) -> std::io::Result<()> {
        write_framed_response(w, self, policy)
    }

    /// Total on-the-wire size.
    pub fn wire_len(&self) -> usize {
        self.to_bytes().len()
    }

    /// Reads one response with default [`Limits`].
    pub fn read_from(r: &mut impl BufRead) -> Result<Response, HttpError> {
        Response::read_from_with(r, &Limits::default())
    }

    /// Reads one response from a buffered stream, enforcing `limits`.
    pub fn read_from_with(r: &mut impl BufRead, limits: &Limits) -> Result<Response, HttpError> {
        Response::read_from_inner(r, limits, None)
    }

    /// Like [`Response::read_from_with`], but the body lands in a buffer
    /// taken from `pool` (zero allocations once the pool is warm).
    pub fn read_from_pooled(
        r: &mut impl BufRead,
        limits: &Limits,
        pool: &BufferPool,
    ) -> Result<Response, HttpError> {
        Response::read_from_inner(r, limits, Some(pool))
    }

    fn read_from_inner(
        r: &mut impl BufRead,
        limits: &Limits,
        pool: Option<&BufferPool>,
    ) -> Result<Response, HttpError> {
        let line = read_line(r, limits)?
            .ok_or_else(|| HttpError::Protocol("connection closed before response".into()))?;
        let mut parts = line.splitn(3, ' ');
        let _version = parts.next().unwrap_or_default();
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| HttpError::Protocol(format!("bad status line: {line:?}")))?;
        let reason = parts.next().unwrap_or("").to_string();
        let headers = read_headers(r, limits)?;
        let body = read_body(r, &headers, limits, pool)?;
        Ok(Response {
            status,
            reason,
            headers,
            body,
        })
    }
}

fn write_framed_request(
    w: &mut impl Write,
    req: &Request,
    policy: &ChunkPolicy,
) -> std::io::Result<()> {
    let start = format!("{} {} HTTP/1.1\r\n", req.method, req.path);
    body::write_framed(w, &start, &req.headers, &req.body, policy)
}

fn write_framed_response(
    w: &mut impl Write,
    resp: &Response,
    policy: &ChunkPolicy,
) -> std::io::Result<()> {
    let start = format!("HTTP/1.1 {} {}\r\n", resp.status, resp.reason);
    body::write_framed(w, &start, &resp.headers, &resp.body, policy)
}

fn read_line(r: &mut impl BufRead, limits: &Limits) -> Result<Option<String>, HttpError> {
    body::read_line_capped(r, limits.max_header_bytes, "header")
}

fn read_headers(r: &mut impl BufRead, limits: &Limits) -> Result<Vec<(String, String)>, HttpError> {
    let mut headers = Vec::new();
    let mut total = 0usize;
    loop {
        let line =
            read_line(r, limits)?.ok_or_else(|| HttpError::Protocol("eof in headers".into()))?;
        if line.is_empty() {
            return Ok(headers);
        }
        total += line.len();
        if total > limits.max_header_bytes {
            return Err(HttpError::TooLarge {
                what: "header",
                limit: limits.max_header_bytes,
            });
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Protocol(format!("bad header: {line:?}")))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
}

fn read_body(
    r: &mut impl BufRead,
    headers: &[(String, String)],
    limits: &Limits,
    pool: Option<&BufferPool>,
) -> Result<Vec<u8>, HttpError> {
    // Strict framing resolution: malformed/conflicting declarations are
    // protocol errors (and close the connection), never "empty body" — a
    // silently skipped body would be parsed as the next pipelined message.
    let framing = body::parse_framing(headers)?;
    let reader = BodyReader::new(r, framing, limits)?;
    match pool {
        Some(pool) => reader.read_to_pooled(pool),
        None => reader.read_to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_round_trips() {
        let req = Request::post("/svc", "text/xml", b"<x/>".to_vec());
        let bytes = req.to_bytes();
        let parsed = Request::read_from(&mut BufReader::new(&bytes[..]))
            .unwrap()
            .unwrap();
        assert_eq!(parsed.method, "POST");
        assert_eq!(parsed.path, "/svc");
        assert_eq!(parsed.body, b"<x/>");
        assert_eq!(parsed.header("content-type"), Some("text/xml"));
        assert_eq!(parsed.header("CONTENT-LENGTH"), Some("4"));
    }

    #[test]
    fn response_round_trips() {
        let resp = Response::ok("application/pbio", vec![1, 2, 3]);
        let bytes = resp.to_bytes();
        let parsed = Response::read_from(&mut BufReader::new(&bytes[..])).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.reason, "OK");
        assert_eq!(parsed.body, vec![1, 2, 3]);
    }

    #[test]
    fn eof_before_request_is_clean_close() {
        let empty: &[u8] = b"";
        assert!(Request::read_from(&mut BufReader::new(empty))
            .unwrap()
            .is_none());
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in [
            "GARBAGE\r\n\r\n",
            "POST /x HTTP/1.1\r\nno-colon-header\r\n\r\n",
            "POST /x\r\n\r\n",
            "POST /x FTP/1.0\r\n\r\n",
        ] {
            let res = Request::read_from(&mut BufReader::new(bad.as_bytes()));
            assert!(
                matches!(res, Err(HttpError::Protocol(_))),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn oversized_headers_rejected() {
        let huge = format!("POST /x HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(20_000));
        assert!(matches!(
            Request::read_from(&mut BufReader::new(huge.as_bytes())),
            Err(HttpError::TooLarge { what: "header", .. })
        ));
    }

    #[test]
    fn oversized_body_rejected_by_declared_length() {
        let limits = Limits {
            max_body_bytes: 64,
            ..Limits::default()
        };
        // Declares a big body but sends none: must fail on the declaration,
        // not by trying to read 1 MB.
        let doc = "POST /x HTTP/1.1\r\nContent-Length: 1000000\r\n\r\n";
        assert!(matches!(
            Request::read_from_with(&mut BufReader::new(doc.as_bytes()), &limits),
            Err(HttpError::TooLarge {
                what: "body",
                limit: 64
            })
        ));
    }

    #[test]
    fn custom_header_limit_enforced() {
        let limits = Limits {
            max_header_bytes: 32,
            ..Limits::default()
        };
        let doc = format!("POST /x HTTP/1.1\r\nX: {}\r\n\r\n", "b".repeat(100));
        assert!(matches!(
            Request::read_from_with(&mut BufReader::new(doc.as_bytes()), &limits),
            Err(HttpError::TooLarge { what: "header", .. })
        ));
    }

    #[test]
    fn timeout_io_errors_classified() {
        let e = std::io::Error::new(std::io::ErrorKind::WouldBlock, "slow");
        assert!(matches!(
            HttpError::from_io(e, TimeoutKind::Read),
            HttpError::Timeout(TimeoutKind::Read)
        ));
        let e = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "rst");
        assert!(matches!(
            HttpError::from_io(e, TimeoutKind::Read),
            HttpError::Transport(_)
        ));
    }

    #[test]
    fn transport_errors_chain_source() {
        let e = HttpError::Transport(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "bp"));
        let src = std::error::Error::source(&e).expect("transport must chain its io cause");
        assert!(src.to_string().contains("bp"));
    }

    #[test]
    fn wire_len_counts_headers_and_body() {
        let req = Request::post("/s", "text/xml", vec![0; 100]);
        assert!(req.wire_len() > 100 + 50);
        let overhead = req.wire_len() - 100;
        // The HTTP framing overhead SOAP pays per message: order 10^2 B.
        assert!((60..400).contains(&overhead), "overhead {overhead}");
    }

    #[test]
    fn get_has_no_body() {
        let req = Request::get("/wsdl");
        let parsed = Request::read_from(&mut BufReader::new(&req.to_bytes()[..]))
            .unwrap()
            .unwrap();
        assert_eq!(parsed.method, "GET");
        assert!(parsed.body.is_empty());
    }
}
