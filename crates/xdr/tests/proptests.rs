//! Property tests: XDR round trips for arbitrary schemas/values.

use proptest::prelude::*;
use sbq_model::{StructDesc, StructValue, TypeDesc, Value};
use sbq_xdr::xdr;

fn arb_type(depth: u32) -> impl Strategy<Value = TypeDesc> {
    let leaf = prop_oneof![
        Just(TypeDesc::Int),
        Just(TypeDesc::Float),
        Just(TypeDesc::Char),
        Just(TypeDesc::Str),
        Just(TypeDesc::Bytes),
    ];
    leaf.prop_recursive(depth, 20, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(TypeDesc::list_of),
            (proptest::collection::vec(inner, 1..4), "[a-z]{1,6}").prop_map(|(tys, name)| {
                TypeDesc::Struct(StructDesc::new(
                    name,
                    tys.into_iter().enumerate().map(|(i, t)| (format!("f{i}"), t)).collect(),
                ))
            }),
        ]
    })
}

fn sample(ty: &TypeDesc, seed: &mut u64) -> Value {
    *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let s = *seed;
    match ty {
        TypeDesc::Int => Value::Int(s as i64),
        TypeDesc::Float => Value::Float((s % 1_000_000) as f64 / 3.0),
        TypeDesc::Char => Value::Char((s % 256) as u8),
        TypeDesc::Str => Value::Str(format!("str-{}", s % 10000)),
        TypeDesc::Bytes => Value::Bytes((0..(s % 16) as u8).collect()),
        TypeDesc::List(e) => {
            let n = (s % 5) as usize;
            match **e {
                TypeDesc::Int => Value::IntArray((0..n).map(|i| (s ^ i as u64) as i64).collect()),
                TypeDesc::Float => Value::FloatArray((0..n).map(|i| i as f64 + 0.25).collect()),
                _ => Value::List((0..n).map(|_| sample(e, seed)).collect()),
            }
        }
        TypeDesc::Struct(sd) => Value::Struct(StructValue::new(
            sd.name.clone(),
            sd.fields.iter().map(|(n, t)| (n.clone(), sample(t, seed))).collect(),
        )),
    }
}

proptest! {
    #[test]
    fn xdr_round_trips(ty in arb_type(3), seed in any::<u64>()) {
        let mut s = seed;
        let v = sample(&ty, &mut s);
        let bytes = xdr::encode(&v, &ty).unwrap();
        prop_assert_eq!(bytes.len() % 4, 0, "xdr output always 4-aligned");
        prop_assert_eq!(xdr::decode(&bytes, &ty).unwrap(), v);
    }

    #[test]
    fn xdr_decode_never_panics(ty in arb_type(2), data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = xdr::decode(&data, &ty);
    }
}
