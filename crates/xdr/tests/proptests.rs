//! Randomized-property tests: XDR round trips for arbitrary
//! schemas/values. Seeded generation keeps every case reproducible.

use sbq_model::{StructDesc, StructValue, TypeDesc, Value};
use sbq_runtime::SmallRng;
use sbq_xdr::xdr;

const CASES: u64 = 256;

fn arb_type(rng: &mut SmallRng, depth: u32) -> TypeDesc {
    let leaf = |rng: &mut SmallRng| match rng.gen_below(5) {
        0 => TypeDesc::Int,
        1 => TypeDesc::Float,
        2 => TypeDesc::Char,
        3 => TypeDesc::Str,
        _ => TypeDesc::Bytes,
    };
    if depth == 0 || rng.gen_bool(0.4) {
        return leaf(rng);
    }
    match rng.gen_below(2) {
        0 => TypeDesc::list_of(arb_type(rng, depth - 1)),
        _ => {
            let n = 1 + rng.gen_below(3) as usize;
            let fields = (0..n)
                .map(|i| (format!("f{i}"), arb_type(rng, depth - 1)))
                .collect();
            let name: String = (0..1 + rng.gen_below(6))
                .map(|_| (b'a' + rng.gen_below(26) as u8) as char)
                .collect();
            TypeDesc::Struct(StructDesc::new(name, fields))
        }
    }
}

fn sample(ty: &TypeDesc, seed: &mut u64) -> Value {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let s = *seed;
    match ty {
        TypeDesc::Int => Value::Int(s as i64),
        TypeDesc::Float => Value::Float((s % 1_000_000) as f64 / 3.0),
        TypeDesc::Char => Value::Char((s % 256) as u8),
        TypeDesc::Str => Value::Str(format!("str-{}", s % 10000)),
        TypeDesc::Bytes => Value::Bytes((0..(s % 16) as u8).collect()),
        TypeDesc::List(e) => {
            let n = (s % 5) as usize;
            match **e {
                TypeDesc::Int => Value::IntArray((0..n).map(|i| (s ^ i as u64) as i64).collect()),
                TypeDesc::Float => Value::FloatArray((0..n).map(|i| i as f64 + 0.25).collect()),
                _ => Value::List((0..n).map(|_| sample(e, seed)).collect()),
            }
        }
        TypeDesc::Struct(sd) => Value::Struct(StructValue::new(
            sd.name.clone(),
            sd.fields
                .iter()
                .map(|(n, t)| (n.clone(), sample(t, seed)))
                .collect(),
        )),
    }
}

#[test]
fn xdr_round_trips() {
    let mut rng = SmallRng::seed_from_u64(0xd8_0001);
    for _ in 0..CASES {
        let ty = arb_type(&mut rng, 3);
        let mut s = rng.next_u64();
        let v = sample(&ty, &mut s);
        let bytes = xdr::encode(&v, &ty).unwrap();
        assert_eq!(bytes.len() % 4, 0, "xdr output always 4-aligned");
        assert_eq!(xdr::decode(&bytes, &ty).unwrap(), v);
    }
}

#[test]
fn xdr_decode_never_panics() {
    let mut rng = SmallRng::seed_from_u64(0xd8_0002);
    for _ in 0..CASES {
        let ty = arb_type(&mut rng, 2);
        let n = rng.gen_below(256) as usize;
        let data: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        let _ = xdr::decode(&data, &ty);
    }
}
