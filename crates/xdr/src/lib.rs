//! Sun RPC with XDR data representation — the baseline SOAP-bin is
//! compared against in the paper's §IV-A ("First, we demonstrate the
//! performance of SOAP-bin by comparing it with Sun RPC (which uses the
//! XDR data representation)").
//!
//! * [`xdr`] — External Data Representation (RFC 4506 subset): big-endian,
//!   4-byte aligned primitives; strings and variable arrays carry `u32`
//!   length prefixes.
//! * [`rpc`] — ONC RPC v2 (RFC 1057/5531 subset) over TCP with record
//!   marking: call/reply headers, `AUTH_NONE` credentials, and a blocking
//!   client plus a threaded server for end-to-end tests.
//!
//! XDR differs from PBIO in exactly the ways the paper leans on: both
//! sides always translate to/from the canonical big-endian form (symmetric
//! up/down translation), whereas PBIO's sender transmits native data and
//! only the receiver converts.

pub mod rpc;
pub mod xdr;

pub use rpc::{RpcClient, RpcError, RpcServer};
pub use xdr::{decode, encode, XdrError};
