//! ONC (Sun) RPC v2 over TCP with record marking — RFC 1057/5531 subset.
//!
//! The call path is the classic one: the client XDR-encodes arguments,
//! wraps them in an RPC call header, frames the record, and blocks on the
//! reply. A threaded [`RpcServer`] dispatches procedure numbers to
//! registered handlers. `AUTH_NONE` only, `PROG_MISMATCH`/`PROC_UNAVAIL`
//! error replies supported — everything the Fig. 4 baseline exercises.

use crate::xdr::{self, prim, XdrError};
use sbq_model::{TypeDesc, Value};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;

const MSG_CALL: u32 = 0;
const MSG_REPLY: u32 = 1;
const RPC_VERSION: u32 = 2;
const REPLY_ACCEPTED: u32 = 0;
const ACCEPT_SUCCESS: u32 = 0;
const ACCEPT_PROC_UNAVAIL: u32 = 3;

/// RPC-layer errors.
#[derive(Debug)]
pub enum RpcError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// XDR failure in headers or payloads.
    Xdr(XdrError),
    /// Server rejected or failed the call.
    Rejected(String),
    /// Malformed record or header.
    Protocol(String),
}

impl From<std::io::Error> for RpcError {
    fn from(e: std::io::Error) -> Self {
        RpcError::Io(e)
    }
}

impl From<XdrError> for RpcError {
    fn from(e: XdrError) -> Self {
        RpcError::Xdr(e)
    }
}

impl std::fmt::Display for RpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpcError::Io(e) => write!(f, "rpc io error: {e}"),
            RpcError::Xdr(e) => write!(f, "rpc xdr error: {e}"),
            RpcError::Rejected(m) => write!(f, "rpc rejected: {m}"),
            RpcError::Protocol(m) => write!(f, "rpc protocol error: {m}"),
        }
    }
}

impl std::error::Error for RpcError {}

// ---------------------------------------------------------------------------
// Record marking (RFC 5531 §11): 4-byte mark, high bit = last fragment.
// ---------------------------------------------------------------------------

/// Writes one record (single fragment — ample for our message sizes).
pub fn write_record(w: &mut impl Write, body: &[u8]) -> std::io::Result<()> {
    let mark = 0x8000_0000u32 | body.len() as u32;
    w.write_all(&mark.to_be_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one complete record (reassembling fragments).
pub fn read_record(r: &mut impl Read) -> Result<Vec<u8>, RpcError> {
    let mut out = Vec::new();
    loop {
        let mut markb = [0u8; 4];
        r.read_exact(&mut markb)?;
        let mark = u32::from_be_bytes(markb);
        let len = (mark & 0x7fff_ffff) as usize;
        let start = out.len();
        out.resize(start + len, 0);
        r.read_exact(&mut out[start..])?;
        if mark & 0x8000_0000 != 0 {
            return Ok(out);
        }
    }
}

// ---------------------------------------------------------------------------
// Message construction (also used standalone by the benchmarks to measure
// exact on-the-wire sizes without sockets)
// ---------------------------------------------------------------------------

/// Builds a call message body: header + XDR-encoded `args`.
pub fn build_call(
    xid: u32,
    prog: u32,
    vers: u32,
    proc_num: u32,
    args: &Value,
    args_ty: &TypeDesc,
) -> Result<Vec<u8>, RpcError> {
    let mut out = Vec::with_capacity(args.native_size() + 48);
    prim::put_u32(&mut out, xid);
    prim::put_u32(&mut out, MSG_CALL);
    prim::put_u32(&mut out, RPC_VERSION);
    prim::put_u32(&mut out, prog);
    prim::put_u32(&mut out, vers);
    prim::put_u32(&mut out, proc_num);
    // cred + verf: AUTH_NONE (flavor 0, length 0) each.
    for _ in 0..4 {
        prim::put_u32(&mut out, 0);
    }
    xdr::encode_into(args, args_ty, &mut out)?;
    Ok(out)
}

/// Builds a successful reply body: header + XDR-encoded `result`.
pub fn build_reply(xid: u32, result: &Value, result_ty: &TypeDesc) -> Result<Vec<u8>, RpcError> {
    let mut out = Vec::with_capacity(result.native_size() + 32);
    prim::put_u32(&mut out, xid);
    prim::put_u32(&mut out, MSG_REPLY);
    prim::put_u32(&mut out, REPLY_ACCEPTED);
    // verf: AUTH_NONE.
    prim::put_u32(&mut out, 0);
    prim::put_u32(&mut out, 0);
    prim::put_u32(&mut out, ACCEPT_SUCCESS);
    xdr::encode_into(result, result_ty, &mut out)?;
    Ok(out)
}

fn build_error_reply(xid: u32, accept_stat: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    prim::put_u32(&mut out, xid);
    prim::put_u32(&mut out, MSG_REPLY);
    prim::put_u32(&mut out, REPLY_ACCEPTED);
    prim::put_u32(&mut out, 0);
    prim::put_u32(&mut out, 0);
    prim::put_u32(&mut out, accept_stat);
    out
}

/// Fixed per-call header overhead in bytes (call header + record mark),
/// used by the link-model benchmarks.
pub const CALL_OVERHEAD: usize = 4 + 10 * 4;
/// Fixed per-reply overhead in bytes.
pub const REPLY_OVERHEAD: usize = 4 + 6 * 4;

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// A blocking Sun RPC client over one TCP connection.
pub struct RpcClient {
    stream: TcpStream,
    prog: u32,
    vers: u32,
    next_xid: u32,
}

impl RpcClient {
    /// Connects to an [`RpcServer`].
    pub fn connect(addr: SocketAddr, prog: u32, vers: u32) -> Result<Self, RpcError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(RpcClient {
            stream,
            prog,
            vers,
            next_xid: 1,
        })
    }

    /// Calls `proc_num` with `args`, blocking for the typed result.
    pub fn call(
        &mut self,
        proc_num: u32,
        args: &Value,
        args_ty: &TypeDesc,
        result_ty: &TypeDesc,
    ) -> Result<Value, RpcError> {
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        let body = build_call(xid, self.prog, self.vers, proc_num, args, args_ty)?;
        write_record(&mut self.stream, &body)?;
        let reply = read_record(&mut self.stream)?;
        parse_reply(&reply, xid, result_ty)
    }
}

fn parse_reply(buf: &[u8], want_xid: u32, result_ty: &TypeDesc) -> Result<Value, RpcError> {
    let mut pos = 0;
    let xid = prim::get_u32(buf, &mut pos)?;
    if xid != want_xid {
        return Err(RpcError::Protocol(format!(
            "xid mismatch: {xid} != {want_xid}"
        )));
    }
    if prim::get_u32(buf, &mut pos)? != MSG_REPLY {
        return Err(RpcError::Protocol("not a reply".into()));
    }
    if prim::get_u32(buf, &mut pos)? != REPLY_ACCEPTED {
        return Err(RpcError::Rejected("call denied".into()));
    }
    let _verf_flavor = prim::get_u32(buf, &mut pos)?;
    let verf_len = prim::get_u32(buf, &mut pos)? as usize;
    pos += (verf_len + 3) & !3;
    let stat = prim::get_u32(buf, &mut pos)?;
    if stat != ACCEPT_SUCCESS {
        return Err(RpcError::Rejected(format!("accept_stat {stat}")));
    }
    let v = xdr::decode_at(buf, &mut pos, result_ty)?;
    if pos != buf.len() {
        return Err(RpcError::Protocol("trailing bytes in reply".into()));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// A procedure implementation: takes decoded args, returns the result.
pub type Procedure = Box<dyn Fn(Value) -> Value + Send + Sync>;

struct ProcEntry {
    args_ty: TypeDesc,
    result_ty: TypeDesc,
    handler: Procedure,
}

/// A threaded Sun RPC server (thread per connection).
pub struct RpcServer {
    procs: HashMap<u32, ProcEntry>,
    prog: u32,
    vers: u32,
}

impl RpcServer {
    /// Creates a server for program `prog`, version `vers`.
    pub fn new(prog: u32, vers: u32) -> Self {
        RpcServer {
            procs: HashMap::new(),
            prog,
            vers,
        }
    }

    /// Registers a procedure.
    pub fn register(
        &mut self,
        proc_num: u32,
        args_ty: TypeDesc,
        result_ty: TypeDesc,
        handler: impl Fn(Value) -> Value + Send + Sync + 'static,
    ) {
        self.procs.insert(
            proc_num,
            ProcEntry {
                args_ty,
                result_ty,
                handler: Box::new(handler),
            },
        );
    }

    /// Binds to `addr` and serves until the returned handle is shut down.
    /// Returns the bound address (useful with port 0) and the handle.
    pub fn serve(self, addr: SocketAddr) -> std::io::Result<(SocketAddr, ServerHandle)> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(AtomicU32::new(0));
        let server = Arc::new(self);
        let stop2 = Arc::clone(&stop);
        let conns2 = Arc::clone(&conns);
        let join = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let server = Arc::clone(&server);
                conns2.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    let _ = server.handle_connection(stream);
                });
            }
        });
        Ok((
            local,
            ServerHandle {
                stop,
                addr: local,
                join: Some(join),
                connections: conns,
            },
        ))
    }

    fn handle_connection(&self, mut stream: TcpStream) -> Result<(), RpcError> {
        stream.set_nodelay(true)?;
        loop {
            let record = match read_record(&mut stream) {
                Ok(r) => r,
                Err(RpcError::Io(_)) => return Ok(()), // peer closed
                Err(e) => return Err(e),
            };
            let reply = self.dispatch(&record)?;
            write_record(&mut stream, &reply)?;
        }
    }

    fn dispatch(&self, buf: &[u8]) -> Result<Vec<u8>, RpcError> {
        let mut pos = 0;
        let xid = prim::get_u32(buf, &mut pos)?;
        let msg_type = prim::get_u32(buf, &mut pos)?;
        let rpc_vers = prim::get_u32(buf, &mut pos)?;
        let prog = prim::get_u32(buf, &mut pos)?;
        let vers = prim::get_u32(buf, &mut pos)?;
        let proc_num = prim::get_u32(buf, &mut pos)?;
        if msg_type != MSG_CALL || rpc_vers != RPC_VERSION {
            return Err(RpcError::Protocol("bad call header".into()));
        }
        // Skip cred + verf.
        for _ in 0..2 {
            let _flavor = prim::get_u32(buf, &mut pos)?;
            let len = prim::get_u32(buf, &mut pos)? as usize;
            pos += (len + 3) & !3;
        }
        if prog != self.prog || vers != self.vers {
            return Ok(build_error_reply(xid, 1 /* PROG_UNAVAIL */));
        }
        let Some(entry) = self.procs.get(&proc_num) else {
            return Ok(build_error_reply(xid, ACCEPT_PROC_UNAVAIL));
        };
        let args = xdr::decode_at(buf, &mut pos, &entry.args_ty)?;
        let result = (entry.handler)(args);
        build_reply(xid, &result, &entry.result_ty)
    }
}

/// Handle to a running server; dropping it (or calling
/// [`ServerHandle::shutdown`]) stops accepting new connections.
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    join: Option<std::thread::JoinHandle<()>>,
    connections: Arc<AtomicU32>,
}

impl ServerHandle {
    /// Stops the accept loop.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the listener so `incoming()` returns.
        let _ = TcpStream::connect(self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }

    /// Total connections accepted.
    pub fn connections(&self) -> u32 {
        self.connections.load(Ordering::SeqCst)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbq_model::workload;

    fn echo_server() -> (SocketAddr, ServerHandle) {
        let mut srv = RpcServer::new(0x2000_1234, 1);
        let arr = TypeDesc::list_of(TypeDesc::Int);
        srv.register(1, arr.clone(), arr, |v| v);
        let st = workload::nested_struct_type(3);
        srv.register(2, st.clone(), st, |v| v);
        srv.register(3, TypeDesc::Int, TypeDesc::Int, |v| {
            Value::Int(v.as_int().unwrap() * 2)
        });
        srv.serve("127.0.0.1:0".parse().unwrap()).unwrap()
    }

    #[test]
    fn end_to_end_array_echo() {
        let (addr, _h) = echo_server();
        let mut client = RpcClient::connect(addr, 0x2000_1234, 1).unwrap();
        let arr_ty = TypeDesc::list_of(TypeDesc::Int);
        let v = workload::int_array(1000, 9);
        let got = client.call(1, &v, &arr_ty, &arr_ty).unwrap();
        assert_eq!(got, v);
    }

    #[test]
    fn end_to_end_nested_struct_and_compute() {
        let (addr, _h) = echo_server();
        let mut client = RpcClient::connect(addr, 0x2000_1234, 1).unwrap();
        let st = workload::nested_struct_type(3);
        let v = workload::nested_struct(3, 2);
        assert_eq!(client.call(2, &v, &st, &st).unwrap(), v);
        let got = client
            .call(3, &Value::Int(21), &TypeDesc::Int, &TypeDesc::Int)
            .unwrap();
        assert_eq!(got, Value::Int(42));
    }

    #[test]
    fn multiple_sequential_calls_reuse_connection() {
        let (addr, h) = echo_server();
        let mut client = RpcClient::connect(addr, 0x2000_1234, 1).unwrap();
        let arr_ty = TypeDesc::list_of(TypeDesc::Int);
        for seed in 0..10 {
            let v = workload::int_array(50, seed);
            assert_eq!(client.call(1, &v, &arr_ty, &arr_ty).unwrap(), v);
        }
        assert_eq!(h.connections(), 1);
    }

    #[test]
    fn unknown_procedure_rejected() {
        let (addr, _h) = echo_server();
        let mut client = RpcClient::connect(addr, 0x2000_1234, 1).unwrap();
        let err = client
            .call(99, &Value::Int(1), &TypeDesc::Int, &TypeDesc::Int)
            .unwrap_err();
        assert!(matches!(err, RpcError::Rejected(_)), "{err}");
    }

    #[test]
    fn wrong_program_rejected() {
        let (addr, _h) = echo_server();
        let mut client = RpcClient::connect(addr, 0xdead, 1).unwrap();
        let err = client
            .call(1, &Value::Int(1), &TypeDesc::Int, &TypeDesc::Int)
            .unwrap_err();
        assert!(matches!(err, RpcError::Rejected(_)));
    }

    #[test]
    fn record_marking_round_trips_fragments() {
        // Manually write two fragments and read them back as one record.
        let mut buf: Vec<u8> = Vec::new();
        let part1 = [1u8, 2, 3];
        let part2 = [4u8, 5];
        buf.extend_from_slice(&(part1.len() as u32).to_be_bytes()); // not last
        buf.extend_from_slice(&part1);
        buf.extend_from_slice(&(0x8000_0000u32 | part2.len() as u32).to_be_bytes());
        buf.extend_from_slice(&part2);
        let rec = read_record(&mut &buf[..]).unwrap();
        assert_eq!(rec, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn call_overhead_constant_matches_builder() {
        let body = build_call(1, 2, 3, 4, &Value::Int(0), &TypeDesc::Int).unwrap();
        assert_eq!(body.len() + 4 - 8, CALL_OVERHEAD); // minus the 8-byte int arg
        let reply = build_reply(1, &Value::Int(0), &TypeDesc::Int).unwrap();
        assert_eq!(reply.len() + 4 - 8, REPLY_OVERHEAD);
    }
}
