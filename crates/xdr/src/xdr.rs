//! XDR (RFC 4506) encoding of [`Value`]s against [`TypeDesc`] schemas.
//!
//! Canonical big-endian representation with 4-byte alignment:
//!
//! | schema type | XDR form |
//! |---|---|
//! | `Int` | hyper (8 bytes) |
//! | `Float` | double (8 bytes) |
//! | `Char` | int (4 bytes — XDR has no byte-sized scalar) |
//! | `Str` | string: `u32` length + bytes + pad to 4 |
//! | `List(T)` | variable array: `u32` count + elements |
//! | `Struct` | fields in order |

use sbq_model::{StructValue, TypeDesc, Value};

/// XDR encode/decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdrError {
    /// Input ended mid-structure.
    Truncated,
    /// Value did not conform to the schema.
    TypeMismatch(String),
    /// Non-UTF-8 string payload.
    BadUtf8,
    /// Non-zero padding bytes (strict decoding).
    BadPadding,
}

impl std::fmt::Display for XdrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XdrError::Truncated => write!(f, "xdr: truncated input"),
            XdrError::TypeMismatch(m) => write!(f, "xdr: type mismatch: {m}"),
            XdrError::BadUtf8 => write!(f, "xdr: invalid utf-8"),
            XdrError::BadPadding => write!(f, "xdr: non-zero padding"),
        }
    }
}

impl std::error::Error for XdrError {}

/// Encodes `value` (which must conform to `ty`) into XDR bytes.
pub fn encode(value: &Value, ty: &TypeDesc) -> Result<Vec<u8>, XdrError> {
    let mut out = Vec::with_capacity(value.native_size() + 16);
    encode_into(value, ty, &mut out)?;
    Ok(out)
}

/// Appends the XDR form of `value` to `out`.
pub fn encode_into(value: &Value, ty: &TypeDesc, out: &mut Vec<u8>) -> Result<(), XdrError> {
    match (value, ty) {
        (Value::Int(i), TypeDesc::Int) => out.extend_from_slice(&i.to_be_bytes()),
        (Value::Float(x), TypeDesc::Float) => out.extend_from_slice(&x.to_be_bytes()),
        (Value::Char(c), TypeDesc::Char) => out.extend_from_slice(&(*c as u32).to_be_bytes()),
        (Value::Str(s), TypeDesc::Str) => {
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
            pad(out, s.len());
        }
        (Value::Bytes(b), TypeDesc::Bytes) => {
            out.extend_from_slice(&(b.len() as u32).to_be_bytes());
            out.extend_from_slice(b);
            pad(out, b.len());
        }
        (Value::IntArray(v), TypeDesc::List(e)) if **e == TypeDesc::Int => {
            out.extend_from_slice(&(v.len() as u32).to_be_bytes());
            for i in v {
                out.extend_from_slice(&i.to_be_bytes());
            }
        }
        (Value::FloatArray(v), TypeDesc::List(e)) if **e == TypeDesc::Float => {
            out.extend_from_slice(&(v.len() as u32).to_be_bytes());
            for x in v {
                out.extend_from_slice(&x.to_be_bytes());
            }
        }
        (Value::List(vs), TypeDesc::List(e)) => {
            out.extend_from_slice(&(vs.len() as u32).to_be_bytes());
            for v in vs {
                encode_into(v, e, out)?;
            }
        }
        (Value::Struct(sv), TypeDesc::Struct(sd)) => {
            for (fname, fty) in &sd.fields {
                let fv = sv
                    .field(fname)
                    .ok_or_else(|| XdrError::TypeMismatch(format!("missing field {fname}")))?;
                encode_into(fv, fty, out)?;
            }
        }
        (v, t) => {
            return Err(XdrError::TypeMismatch(format!(
                "{} does not encode as {}",
                v.type_of().name(),
                t.name()
            )))
        }
    }
    Ok(())
}

fn pad(out: &mut Vec<u8>, len: usize) {
    for _ in 0..(4 - len % 4) % 4 {
        out.push(0);
    }
}

/// Decodes XDR bytes back into a value of schema `ty`, consuming the whole
/// buffer.
pub fn decode(buf: &[u8], ty: &TypeDesc) -> Result<Value, XdrError> {
    let mut pos = 0;
    let v = decode_at(buf, &mut pos, ty)?;
    if pos != buf.len() {
        return Err(XdrError::TypeMismatch(format!(
            "trailing bytes: consumed {pos} of {}",
            buf.len()
        )));
    }
    Ok(v)
}

/// Decodes one value of schema `ty` starting at `*pos`.
pub fn decode_at(buf: &[u8], pos: &mut usize, ty: &TypeDesc) -> Result<Value, XdrError> {
    Ok(match ty {
        TypeDesc::Int => Value::Int(i64::from_be_bytes(take::<8>(buf, pos)?)),
        TypeDesc::Float => Value::Float(f64::from_be_bytes(take::<8>(buf, pos)?)),
        TypeDesc::Char => {
            let v = u32::from_be_bytes(take::<4>(buf, pos)?);
            Value::Char((v & 0xff) as u8)
        }
        TypeDesc::Str => {
            let len = u32::from_be_bytes(take::<4>(buf, pos)?) as usize;
            if *pos + len > buf.len() {
                return Err(XdrError::Truncated);
            }
            let s = std::str::from_utf8(&buf[*pos..*pos + len]).map_err(|_| XdrError::BadUtf8)?;
            let v = Value::Str(s.to_string());
            *pos += len;
            skip_pad(buf, pos, len)?;
            v
        }
        TypeDesc::Bytes => {
            let len = u32::from_be_bytes(take::<4>(buf, pos)?) as usize;
            if *pos + len > buf.len() {
                return Err(XdrError::Truncated);
            }
            let b = buf[*pos..*pos + len].to_vec();
            *pos += len;
            skip_pad(buf, pos, len)?;
            Value::Bytes(b)
        }
        TypeDesc::List(e) => {
            let n = u32::from_be_bytes(take::<4>(buf, pos)?) as usize;
            match **e {
                TypeDesc::Int => {
                    let mut v = Vec::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        v.push(i64::from_be_bytes(take::<8>(buf, pos)?));
                    }
                    Value::IntArray(v)
                }
                TypeDesc::Float => {
                    let mut v = Vec::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        v.push(f64::from_be_bytes(take::<8>(buf, pos)?));
                    }
                    Value::FloatArray(v)
                }
                _ => {
                    let mut v = Vec::with_capacity(n.min(4096));
                    for _ in 0..n {
                        v.push(decode_at(buf, pos, e)?);
                    }
                    Value::List(v)
                }
            }
        }
        TypeDesc::Struct(sd) => {
            let mut fields = Vec::with_capacity(sd.fields.len());
            for (fname, fty) in &sd.fields {
                fields.push((fname.clone(), decode_at(buf, pos, fty)?));
            }
            Value::Struct(StructValue::new(sd.name.clone(), fields))
        }
    })
}

fn take<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N], XdrError> {
    if *pos + N > buf.len() {
        return Err(XdrError::Truncated);
    }
    let arr = buf[*pos..*pos + N].try_into().expect("len checked");
    *pos += N;
    Ok(arr)
}

fn skip_pad(buf: &[u8], pos: &mut usize, len: usize) -> Result<(), XdrError> {
    let padding = (4 - len % 4) % 4;
    if *pos + padding > buf.len() {
        return Err(XdrError::Truncated);
    }
    if buf[*pos..*pos + padding].iter().any(|&b| b != 0) {
        return Err(XdrError::BadPadding);
    }
    *pos += padding;
    Ok(())
}

/// Writers for the raw XDR primitives the RPC headers use.
pub mod prim {
    use super::XdrError;

    /// Appends a big-endian `u32`.
    pub fn put_u32(out: &mut Vec<u8>, v: u32) {
        out.extend_from_slice(&v.to_be_bytes());
    }

    /// Reads a big-endian `u32`.
    pub fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32, XdrError> {
        if *pos + 4 > buf.len() {
            return Err(XdrError::Truncated);
        }
        let v = u32::from_be_bytes(buf[*pos..*pos + 4].try_into().expect("len checked"));
        *pos += 4;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbq_model::workload;

    #[test]
    fn scalars_round_trip() {
        for (v, t) in [
            (Value::Int(-42), TypeDesc::Int),
            (Value::Float(3.25), TypeDesc::Float),
            (Value::Char(b'x'), TypeDesc::Char),
            (Value::Str("hello".into()), TypeDesc::Str),
        ] {
            let bytes = encode(&v, &t).unwrap();
            assert_eq!(bytes.len() % 4, 0, "alignment for {t}");
            assert_eq!(decode(&bytes, &t).unwrap(), v);
        }
    }

    #[test]
    fn string_padding_is_zeroed_and_checked() {
        let bytes = encode(&Value::Str("ab".into()), &TypeDesc::Str).unwrap();
        assert_eq!(bytes.len(), 8);
        assert_eq!(&bytes[6..], &[0, 0]);
        let mut bad = bytes.clone();
        bad[7] = 1;
        assert_eq!(
            decode(&bad, &TypeDesc::Str).unwrap_err(),
            XdrError::BadPadding
        );
    }

    #[test]
    fn arrays_round_trip() {
        let v = workload::int_array(257, 3);
        let t = TypeDesc::list_of(TypeDesc::Int);
        let bytes = encode(&v, &t).unwrap();
        assert_eq!(bytes.len(), 4 + 8 * 257);
        assert_eq!(decode(&bytes, &t).unwrap(), v);
    }

    #[test]
    fn nested_structs_round_trip() {
        for depth in 0..6 {
            let v = workload::nested_struct(depth, 21);
            let t = workload::nested_struct_type(depth);
            let bytes = encode(&v, &t).unwrap();
            assert_eq!(decode(&bytes, &t).unwrap(), v, "depth {depth}");
        }
    }

    #[test]
    fn char_occupies_four_bytes() {
        // XDR's lack of a byte-sized scalar is one reason PBIO messages
        // can be denser.
        let bytes = encode(&Value::Char(7), &TypeDesc::Char).unwrap();
        assert_eq!(bytes.len(), 4);
    }

    #[test]
    fn mismatches_and_truncation_error() {
        assert!(encode(&Value::Int(1), &TypeDesc::Str).is_err());
        let t = workload::nested_struct_type(1);
        let bytes = encode(&workload::nested_struct(1, 1), &t).unwrap();
        assert_eq!(
            decode(&bytes[..bytes.len() - 2], &t).unwrap_err(),
            XdrError::Truncated
        );
        let mut extra = bytes.clone();
        extra.extend_from_slice(&[0; 4]);
        assert!(decode(&extra, &t).is_err());
    }
}
