//! The service portal (Fig. 10).
//!
//! The portal sits between display clients (HTTP/SOAP side) and the ECho
//! bond-data channel (event side). Clients discover it via WSDL, then
//! request frames with a *filter* and a *desired output format*; filters
//! can be installed and changed at runtime (the paper's "client can
//! dynamically change the filter code and the output format desired").
//!
//! Filter code is expressed in a small spec language instead of ECho's
//! dynamically generated binary filters (same substitution as for PBIO
//! conversion plans):
//!
//! * `identity` — pass through;
//! * `elements:CNO` — keep only atoms whose element tag is listed, with
//!   bonds remapped to the surviving indices;
//! * `stride:K` — keep every K-th atom;
//! * `halfbox` — keep atoms in the lower half of the bounding box
//!   (focus-of-interest cropping).

use crate::render::render_svg;
use sbq_echo::EchoBus;
use sbq_mdsim::BondGraph;
use sbq_model::{TypeDesc, Value};
use sbq_runtime::sync::{Mutex, RwLock};
use sbq_wsdl::{write_wsdl, ServiceDef};
use soap_binq::{marshal, SoapServer, SoapServerBuilder, WireEncoding};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;

/// A parsed filter specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterSpec {
    /// Pass events through unchanged.
    Identity,
    /// Keep atoms whose element byte is in the set.
    Elements(Vec<u8>),
    /// Keep every k-th atom.
    Stride(usize),
    /// Keep atoms with y below the bounding-box midline.
    HalfBox,
}

impl FilterSpec {
    /// Parses a spec string; `None` on unknown syntax.
    pub fn parse(spec: &str) -> Option<FilterSpec> {
        let spec = spec.trim();
        if spec == "identity" || spec.is_empty() {
            return Some(FilterSpec::Identity);
        }
        if spec == "halfbox" {
            return Some(FilterSpec::HalfBox);
        }
        if let Some(rest) = spec.strip_prefix("elements:") {
            let set: Vec<u8> = rest.bytes().filter(|b| !b.is_ascii_whitespace()).collect();
            return (!set.is_empty()).then_some(FilterSpec::Elements(set));
        }
        if let Some(rest) = spec.strip_prefix("stride:") {
            let k: usize = rest.trim().parse().ok()?;
            return (k >= 1).then_some(FilterSpec::Stride(k));
        }
        None
    }

    /// Applies the filter to a bond graph.
    pub fn apply(&self, g: &BondGraph) -> BondGraph {
        let keep: Vec<bool> = match self {
            FilterSpec::Identity => return g.clone(),
            FilterSpec::Elements(set) => g.elements.iter().map(|e| set.contains(e)).collect(),
            FilterSpec::Stride(k) => (0..g.elements.len()).map(|i| i % k == 0).collect(),
            FilterSpec::HalfBox => {
                let n = g.elements.len();
                if n == 0 {
                    return g.clone();
                }
                let ys: Vec<f64> = (0..n).map(|i| g.positions[3 * i + 1]).collect();
                let mid = (ys.iter().cloned().fold(f64::MAX, f64::min)
                    + ys.iter().cloned().fold(f64::MIN, f64::max))
                    / 2.0;
                ys.iter().map(|&y| y <= mid).collect()
            }
        };
        // Remap surviving atoms and the bonds between them.
        let mut remap = vec![usize::MAX; keep.len()];
        let mut elements = Vec::new();
        let mut positions = Vec::new();
        for (i, &k) in keep.iter().enumerate() {
            if k {
                remap[i] = elements.len();
                elements.push(g.elements[i]);
                positions.extend_from_slice(&g.positions[3 * i..3 * i + 3]);
            }
        }
        let mut bonds = Vec::new();
        for pair in g.bonds.chunks_exact(2) {
            let (a, b) = (pair[0] as usize, pair[1] as usize);
            if a < keep.len() && b < keep.len() && keep[a] && keep[b] {
                bonds.push(remap[a] as i64);
                bonds.push(remap[b] as i64);
            }
        }
        BondGraph {
            timestep: g.timestep,
            elements,
            positions,
            bonds,
        }
    }
}

/// The portal's service definition: WSDL discovery, frame requests, and
/// runtime filter installation.
pub fn portal_service(location: &str) -> ServiceDef {
    ServiceDef::new("VizPortal", "urn:sbq:viz", location)
        .with_operation("get_wsdl", TypeDesc::Int, TypeDesc::Str)
        .with_operation(
            "get_frame",
            TypeDesc::struct_of(
                "frame_request",
                vec![("filter", TypeDesc::Str), ("format", TypeDesc::Str)],
            ),
            TypeDesc::Str,
        )
        .with_operation(
            "install_filter",
            TypeDesc::struct_of(
                "filter_def",
                vec![("name", TypeDesc::Str), ("spec", TypeDesc::Str)],
            ),
            TypeDesc::Int,
        )
}

/// The running portal.
pub struct ServicePortal {
    latest: Arc<Mutex<Option<BondGraph>>>,
    filters: Arc<RwLock<HashMap<String, FilterSpec>>>,
}

impl ServicePortal {
    /// Creates a portal subscribed to `channel` on `bus` (the channel
    /// must carry [`BondGraph`] values). A background thread drains the
    /// subscription into the portal's latest-frame slot.
    pub fn new(bus: &EchoBus, channel: &str) -> Result<ServicePortal, sbq_echo::EchoError> {
        let rx = bus.subscribe(channel)?;
        let latest = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&latest);
        std::thread::spawn(move || {
            for event in rx.iter() {
                if let Some(g) = BondGraph::from_value(&event) {
                    *slot.lock() = Some(g);
                }
            }
        });
        Ok(ServicePortal {
            latest,
            filters: Arc::new(RwLock::new(HashMap::new())),
        })
    }

    /// Renders one frame for a filter spec (or installed filter name) and
    /// output format (`svg` or `xml`).
    pub fn frame(&self, filter: &str, format: &str) -> String {
        let graph = self.latest.lock().clone().unwrap_or(BondGraph {
            timestep: 0,
            elements: vec![],
            positions: vec![],
            bonds: vec![],
        });
        let spec = self
            .filters
            .read()
            .get(filter)
            .cloned()
            .or_else(|| FilterSpec::parse(filter))
            .unwrap_or(FilterSpec::Identity);
        let filtered = spec.apply(&graph);
        match format {
            "xml" => marshal::value_to_xml(&filtered.to_value(), "bond_graph"),
            // SVG is the default display format.
            _ => render_svg(&filtered),
        }
    }

    /// Installs (or replaces) a named filter at runtime.
    pub fn install_filter(&self, name: &str, spec: &str) -> bool {
        match FilterSpec::parse(spec) {
            Some(f) => {
                self.filters.write().insert(name.to_string(), f);
                true
            }
            None => false,
        }
    }

    /// Starts serving over SOAP-binQ.
    pub fn serve(
        self,
        addr: SocketAddr,
        encoding: WireEncoding,
    ) -> Result<SoapServer, soap_binq::SoapError> {
        let svc = portal_service("http://0.0.0.0/viz");
        let wsdl = write_wsdl(&svc).expect("portal service renders to WSDL");
        let builder = SoapServerBuilder::new(&svc, encoding).expect("service compiles");
        let portal = Arc::new(self);
        let p = Arc::clone(&portal);
        let q = Arc::clone(&portal);
        builder
            .handle("get_wsdl", move |_| Value::Str(wsdl.clone()))
            .handle("get_frame", move |req| {
                let (filter, format) = match req.as_struct() {
                    Ok(s) => (
                        s.field("filter")
                            .and_then(|v| v.as_str().ok().map(str::to_string))
                            .unwrap_or_default(),
                        s.field("format")
                            .and_then(|v| v.as_str().ok().map(str::to_string))
                            .unwrap_or_default(),
                    ),
                    Err(_) => (String::new(), String::new()),
                };
                Value::Str(p.frame(&filter, &format))
            })
            .handle("install_filter", move |req| {
                let ok = req
                    .as_struct()
                    .ok()
                    .and_then(|s| {
                        let name = s.field("name")?.as_str().ok()?;
                        let spec = s.field("spec")?.as_str().ok()?;
                        Some(q.install_filter(name, spec))
                    })
                    .unwrap_or(false);
                Value::Int(ok as i64)
            })
            .bind(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbq_mdsim::Molecule;
    use soap_binq::SoapClient;

    fn sample_graph() -> BondGraph {
        let mut m = Molecule::branched_chain(50, 6);
        m.run(20);
        BondGraph::capture(&m, 1.2)
    }

    fn bus_with_bonds() -> (EchoBus, BondGraph) {
        let bus = EchoBus::new();
        bus.create_channel("bonds", BondGraph::type_desc()).unwrap();
        (bus, sample_graph())
    }

    #[test]
    fn filter_specs_parse() {
        assert_eq!(FilterSpec::parse("identity"), Some(FilterSpec::Identity));
        assert_eq!(
            FilterSpec::parse("elements:CN"),
            Some(FilterSpec::Elements(vec![b'C', b'N']))
        );
        assert_eq!(FilterSpec::parse("stride:3"), Some(FilterSpec::Stride(3)));
        assert_eq!(FilterSpec::parse("halfbox"), Some(FilterSpec::HalfBox));
        assert_eq!(FilterSpec::parse("stride:0"), None);
        assert_eq!(FilterSpec::parse("drop tables"), None);
    }

    #[test]
    fn element_filter_remaps_bonds() {
        let g = sample_graph();
        let f = FilterSpec::Elements(vec![b'C']).apply(&g);
        assert!(f.elements.iter().all(|&e| e == b'C'));
        assert!(f.elements.len() < g.elements.len());
        // All bond endpoints must be valid indices into the new atom set.
        assert!(f.bonds.iter().all(|&i| (i as usize) < f.elements.len()));
        assert_eq!(f.positions.len(), 3 * f.elements.len());
    }

    #[test]
    fn stride_filter_thins_atoms() {
        let g = sample_graph();
        let f = FilterSpec::Stride(2).apply(&g);
        assert_eq!(f.elements.len(), g.elements.len().div_ceil(2));
    }

    #[test]
    fn portal_tracks_latest_event() {
        let (bus, g) = bus_with_bonds();
        let portal = ServicePortal::new(&bus, "bonds").unwrap();
        bus.submit("bonds", g.to_value()).unwrap();
        // The drain thread is asynchronous; poll briefly.
        let mut frame = String::new();
        for _ in 0..100 {
            frame = portal.frame("identity", "svg");
            if frame.contains("circle") {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(frame.contains("circle"), "portal never saw the event");
    }

    #[test]
    fn end_to_end_portal_over_soap() {
        let (bus, g) = bus_with_bonds();
        let portal = ServicePortal::new(&bus, "bonds").unwrap();
        bus.submit("bonds", g.to_value()).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let server = portal
            .serve("127.0.0.1:0".parse().unwrap(), WireEncoding::Pbio)
            .unwrap();
        let svc = portal_service("x");
        let mut client = SoapClient::connect(server.addr(), &svc, WireEncoding::Pbio).unwrap();

        // (1)/(2): discover the WSDL.
        let wsdl = client.call("get_wsdl", Value::Int(0)).unwrap();
        let doc = wsdl.as_str().unwrap();
        assert!(doc.contains("VizPortal"));
        assert!(sbq_wsdl::parse_wsdl(doc).is_ok());

        // (3)-(5): request an SVG frame with a filter.
        let req = Value::struct_of(
            "frame_request",
            vec![
                ("filter", Value::Str("elements:C".into())),
                ("format", Value::Str("svg".into())),
            ],
        );
        let svg = client.call("get_frame", req).unwrap();
        assert!(svg.as_str().unwrap().starts_with("<?xml"));

        // Dynamically change the filter and output format.
        let inst = Value::struct_of(
            "filter_def",
            vec![
                ("name", Value::Str("mine".into())),
                ("spec", Value::Str("stride:2".into())),
            ],
        );
        assert_eq!(client.call("install_filter", inst).unwrap(), Value::Int(1));
        let req = Value::struct_of(
            "frame_request",
            vec![
                ("filter", Value::Str("mine".into())),
                ("format", Value::Str("xml".into())),
            ],
        );
        let xml = client.call("get_frame", req).unwrap();
        assert!(xml.as_str().unwrap().starts_with("<bond_graph>"));

        // Bad filter spec is rejected.
        let bad = Value::struct_of(
            "filter_def",
            vec![
                ("name", Value::Str("x".into())),
                ("spec", Value::Str("??".into())),
            ],
        );
        assert_eq!(client.call("install_filter", bad).unwrap(), Value::Int(0));
    }

    #[test]
    fn empty_portal_serves_empty_scene() {
        let (bus, _) = bus_with_bonds();
        let portal = ServicePortal::new(&bus, "bonds").unwrap();
        let svg = portal.frame("identity", "svg");
        assert!(svg.contains("<svg"));
        assert!(!svg.contains("circle"));
    }
}
