//! Bond graph → SVG scene.

use crate::svg::SvgDoc;
use sbq_mdsim::BondGraph;

/// Canvas size of rendered frames.
pub const CANVAS: (u32, u32) = (640, 480);

/// Renders a bond graph as an SVG document: orthographic projection onto
/// the x/y plane, auto-scaled to the canvas; bonds as gray lines, atoms
/// as element-colored circles (CPK-ish colors).
pub fn render_svg(graph: &BondGraph) -> String {
    let (w, h) = CANVAS;
    let mut doc = SvgDoc::new(w, h);
    doc.rect(0.0, 0.0, w as f64, h as f64, "#101018");

    let n = graph.elements.len();
    if n == 0 {
        return doc.finish();
    }

    // Bounding box of x/y coordinates.
    let (mut min_x, mut max_x, mut min_y, mut max_y) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for i in 0..n {
        let (x, y) = (graph.positions[3 * i], graph.positions[3 * i + 1]);
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    let span = (max_x - min_x).max(max_y - min_y).max(1e-6);
    let margin = 30.0;
    let scale = (w as f64 - 2.0 * margin).min(h as f64 - 2.0 * margin) / span;
    let project = |i: usize| -> (f64, f64) {
        let x = margin + (graph.positions[3 * i] - min_x) * scale;
        let y = margin + (graph.positions[3 * i + 1] - min_y) * scale;
        (x, y)
    };

    // Bonds underneath.
    doc.group("opacity:0.8");
    for pair in graph.bonds.chunks_exact(2) {
        let (a, b) = (pair[0] as usize, pair[1] as usize);
        if a < n && b < n {
            let (x1, y1) = project(a);
            let (x2, y2) = project(b);
            doc.line(x1, y1, x2, y2, "#8899aa", 1.5);
        }
    }
    doc.end_group();

    // Atoms on top.
    for i in 0..n {
        let (x, y) = project(i);
        let (color, r) = element_style(graph.elements[i]);
        doc.circle(x, y, r, color);
    }

    doc.text(
        10.0,
        (h - 10) as f64,
        12,
        &format!("timestep {}", graph.timestep),
    );
    doc.finish()
}

fn element_style(element: u8) -> (&'static str, f64) {
    match element {
        b'C' => ("#c8c8c8", 5.0),
        b'N' => ("#3050f8", 5.0),
        b'O' => ("#ff0d0d", 5.5),
        b'H' => ("#ffffff", 3.0),
        _ => ("#ff69b4", 4.5),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbq_mdsim::Molecule;

    fn graph() -> BondGraph {
        let mut m = Molecule::branched_chain(40, 4);
        m.run(30);
        BondGraph::capture(&m, 1.2)
    }

    #[test]
    fn renders_every_atom_and_bond() {
        let g = graph();
        let svg = render_svg(&g);
        assert_eq!(svg.matches("<circle").count(), g.elements.len());
        assert_eq!(svg.matches("<line").count(), g.bonds.len() / 2);
        assert!(svg.contains("timestep 30"));
    }

    #[test]
    fn output_is_parseable_xml() {
        let svg = render_svg(&graph());
        let mut p = sbq_xml::PullParser::new(&svg);
        loop {
            if p.next().unwrap() == sbq_xml::Event::Eof {
                break;
            }
        }
    }

    #[test]
    fn coordinates_stay_on_canvas() {
        let svg = render_svg(&graph());
        let mut p = sbq_xml::PullParser::new(&svg);
        loop {
            match p.next().unwrap() {
                sbq_xml::Event::Start { name, attrs } if name == "circle" => {
                    let get = |k: &str| -> f64 {
                        attrs
                            .iter()
                            .find(|(n, _)| n == k)
                            .unwrap()
                            .1
                            .parse()
                            .unwrap()
                    };
                    let (cx, cy) = (get("cx"), get("cy"));
                    assert!((0.0..=640.0).contains(&cx), "cx {cx}");
                    assert!((0.0..=480.0).contains(&cy), "cy {cy}");
                }
                sbq_xml::Event::Eof => break,
                _ => {}
            }
        }
    }

    #[test]
    fn empty_graph_renders_background_only() {
        let g = BondGraph {
            timestep: 0,
            elements: vec![],
            positions: vec![],
            bonds: vec![],
        };
        let svg = render_svg(&g);
        assert!(svg.contains("<rect"));
        assert!(!svg.contains("<circle"));
    }
}
