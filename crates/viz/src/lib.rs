//! The remote-visualization application (paper §IV-C.4, Fig. 10).
//!
//! "The display client is connected to the service portal through a HTTP
//! connection. The service portal acts as a sink for the 'ECho' event
//! source that generates bond data. … The service portal (1) advertises
//! its services through a set of WSDL files. These are obtained by the
//! display clients (2), which then construct the appropriate request (3),
//! with filter code and the desired output format. Data arriving from the
//! bondserver (4) is then modified by the filter code, providing the
//! output in the desired format, which is then sent back to the client
//! (5) as the response. The client can dynamically change the filter code
//! and the output format desired."
//!
//! * [`svg`] — SVG 1.0 document writer ("the display expects data in SVG
//!   format, which is just an XML document").
//! * [`render`] — bond graph → SVG scene.
//! * [`portal`] — the service portal: WSDL advertisement, named filters
//!   (runtime-installable, replacing ECho's DCG filters), frame requests.

pub mod portal;
pub mod render;
pub mod svg;

pub use portal::{portal_service, ServicePortal};
pub use svg::SvgDoc;
