//! A small SVG 1.0 document builder over the XML writer.

use sbq_xml::XmlWriter;

/// An SVG document under construction.
pub struct SvgDoc {
    w: XmlWriter,
    open_groups: usize,
}

impl SvgDoc {
    /// Starts a document with the given pixel dimensions.
    pub fn new(width: u32, height: u32) -> SvgDoc {
        let mut w = XmlWriter::new();
        w.declaration();
        let (ws, hs) = (width.to_string(), height.to_string());
        let view = format!("0 0 {width} {height}");
        w.start_with(
            "svg",
            &[
                ("xmlns", "http://www.w3.org/2000/svg"),
                ("version", "1.0"),
                ("width", &ws),
                ("height", &hs),
                ("viewBox", &view),
            ],
        );
        SvgDoc { w, open_groups: 0 }
    }

    /// Opens a `<g>` group with a style attribute.
    pub fn group(&mut self, style: &str) -> &mut SvgDoc {
        self.w.start_with("g", &[("style", style)]);
        self.open_groups += 1;
        self
    }

    /// Closes the innermost group.
    pub fn end_group(&mut self) -> &mut SvgDoc {
        assert!(self.open_groups > 0, "no group open");
        self.w.end();
        self.open_groups -= 1;
        self
    }

    /// A filled circle.
    pub fn circle(&mut self, cx: f64, cy: f64, r: f64, fill: &str) -> &mut SvgDoc {
        self.w.empty(
            "circle",
            &[
                ("cx", &fmt(cx)),
                ("cy", &fmt(cy)),
                ("r", &fmt(r)),
                ("fill", fill),
            ],
        );
        self
    }

    /// A line segment.
    pub fn line(
        &mut self,
        x1: f64,
        y1: f64,
        x2: f64,
        y2: f64,
        stroke: &str,
        width: f64,
    ) -> &mut SvgDoc {
        self.w.empty(
            "line",
            &[
                ("x1", &fmt(x1)),
                ("y1", &fmt(y1)),
                ("x2", &fmt(x2)),
                ("y2", &fmt(y2)),
                ("stroke", stroke),
                ("stroke-width", &fmt(width)),
            ],
        );
        self
    }

    /// A rectangle.
    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) -> &mut SvgDoc {
        self.w.empty(
            "rect",
            &[
                ("x", &fmt(x)),
                ("y", &fmt(y)),
                ("width", &fmt(w)),
                ("height", &fmt(h)),
                ("fill", fill),
            ],
        );
        self
    }

    /// Escaped text at a position.
    pub fn text(&mut self, x: f64, y: f64, size: u32, content: &str) -> &mut SvgDoc {
        let sz = size.to_string();
        self.w.start_with(
            "text",
            &[("x", &fmt(x)), ("y", &fmt(y)), ("font-size", &sz)],
        );
        self.w.text(content);
        self.w.end();
        self
    }

    /// Finishes the document (closing any open groups).
    pub fn finish(mut self) -> String {
        while self.open_groups > 0 {
            self.w.end();
            self.open_groups -= 1;
        }
        self.w.end(); // </svg>
        self.w.finish()
    }
}

fn fmt(v: f64) -> String {
    // Two decimals keep documents compact and deterministic.
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbq_xml::{Event, PullParser};

    #[test]
    fn document_structure() {
        let mut d = SvgDoc::new(200, 100);
        d.group("stroke:gray")
            .line(0.0, 0.0, 10.0, 10.0, "black", 1.5)
            .end_group()
            .circle(5.0, 5.0, 2.0, "#ff0000")
            .rect(1.0, 2.0, 3.0, 4.0, "blue")
            .text(10.0, 20.0, 12, "C<sub>6</sub>");
        let out = d.finish();
        assert!(out.starts_with("<?xml"));
        assert!(out.contains("<svg xmlns=\"http://www.w3.org/2000/svg\""));
        assert!(out.contains("circle"));
        assert!(out.contains("&lt;sub&gt;"), "text must be escaped");
        assert!(out.ends_with("</svg>"));
    }

    #[test]
    fn output_is_well_formed_xml() {
        let mut d = SvgDoc::new(50, 50);
        d.group("x").circle(1.0, 1.0, 1.0, "red");
        let out = d.finish(); // group auto-closed
        let mut p = PullParser::new(&out);
        let mut depth_ok = true;
        loop {
            match p.next().unwrap() {
                Event::Eof => break,
                Event::End { .. } if p.depth() == 0 => depth_ok = true,
                _ => {}
            }
        }
        assert!(depth_ok);
    }

    #[test]
    #[should_panic(expected = "no group open")]
    fn unbalanced_group_panics() {
        SvgDoc::new(10, 10).end_group();
    }
}
