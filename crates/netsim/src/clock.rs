//! Virtual time.

use std::time::Duration;

/// A monotonically advancing virtual clock. All simulated experiments run
/// on virtual time so results are deterministic and independent of host
/// load.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimClock {
    now: Duration,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> SimClock {
        SimClock::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        self.now
    }

    /// Advances by `dt`.
    pub fn advance(&mut self, dt: Duration) {
        self.now += dt;
    }

    /// Advances to an absolute time (no-op if already past it).
    pub fn advance_to(&mut self, t: Duration) {
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = SimClock::new();
        c.advance(Duration::from_millis(3));
        c.advance(Duration::from_millis(2));
        assert_eq!(c.now(), Duration::from_millis(5));
    }

    #[test]
    fn advance_to_never_goes_backward() {
        let mut c = SimClock::new();
        c.advance(Duration::from_secs(10));
        c.advance_to(Duration::from_secs(5));
        assert_eq!(c.now(), Duration::from_secs(10));
        c.advance_to(Duration::from_secs(11));
        assert_eq!(c.now(), Duration::from_secs(11));
    }
}
