//! Fleet-scale scenario runner: thousands of simulated clients sharing
//! one congested backbone.
//!
//! A [`FleetScenario`] models a client *population* rather than a single
//! link: every client has its own last-mile access profile (WAN,
//! lossy-mobile, or jittery — see [`ClientProfile`]) with independently
//! seeded jitter and loss, while all of them share one
//! [`CrossTraffic`] schedule standing in for the congested backbone.
//! Unlike [`SimLink`](crate::SimLink), sampling an RTT does **not**
//! advance the clock: the population is sampled in lockstep rounds
//! ([`FleetScenario::advance`] moves virtual time between rounds), so
//! thousands of concurrent clients all experience the same congestion
//! epoch — which is what produces coherent fleet-wide band transitions
//! during a flash crowd.
//!
//! The scenario produces deterministic per-client RTT samples; the
//! consumer decides what to do with them — feed them to a
//! `FleetQos` table directly, or report them over the wire as
//! `X-Qos-Rtt` headers through a real reactor (the `qos_fleet` bench
//! does the latter).

use crate::traffic::CrossTraffic;
use crate::{Jitter, LinkSpec};
use sbq_runtime::SmallRng;
use std::time::Duration;

/// The last-mile access profile of one simulated client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientProfile {
    /// [`LinkSpec::wan`] with mild (±5 %) jitter: healthy continental
    /// path.
    Wan,
    /// [`LinkSpec::mobile_2mbps`] with 3 % per-packet loss and ±15 %
    /// jitter: slow *and* erratic.
    LossyMobile,
    /// [`LinkSpec::wan`] with ±30 % jitter and no loss: healthy on
    /// average, erratic sample to sample.
    Jittery,
}

impl ClientProfile {
    fn spec(self) -> LinkSpec {
        match self {
            ClientProfile::Wan | ClientProfile::Jittery => LinkSpec::wan(),
            ClientProfile::LossyMobile => LinkSpec::mobile_2mbps(),
        }
    }

    fn jitter_amplitude(self) -> f64 {
        match self {
            ClientProfile::Wan => 0.05,
            ClientProfile::LossyMobile => 0.15,
            ClientProfile::Jittery => 0.30,
        }
    }

    fn loss_p(self) -> f64 {
        match self {
            ClientProfile::LossyMobile => 0.03,
            _ => 0.0,
        }
    }
}

/// One simulated client: access profile + seeded noise sources.
#[derive(Debug, Clone)]
struct SimClient {
    profile: ClientProfile,
    spec: LinkSpec,
    jitter: Jitter,
    loss_rng: SmallRng,
}

/// A deterministic population of simulated clients over a shared
/// congestion schedule.
#[derive(Debug, Clone)]
pub struct FleetScenario {
    clients: Vec<SimClient>,
    cross: CrossTraffic,
    now: Duration,
}

impl FleetScenario {
    /// An empty scenario over a backbone congestion schedule; populate
    /// with [`FleetScenario::with_clients`].
    pub fn new(cross: CrossTraffic) -> FleetScenario {
        FleetScenario {
            clients: Vec::new(),
            cross,
            now: Duration::ZERO,
        }
    }

    /// Appends `n` clients with the given access profile — builder
    /// style. Every client's noise is independently seeded from `seed`,
    /// so two scenarios built alike replay identically.
    pub fn with_clients(mut self, n: usize, profile: ClientProfile, seed: u64) -> FleetScenario {
        let base = self.clients.len() as u64;
        for i in 0..n as u64 {
            let s = seed ^ (base + i).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            self.clients.push(SimClient {
                profile,
                spec: profile.spec(),
                jitter: Jitter::new(s, profile.jitter_amplitude()),
                loss_rng: SmallRng::seed_from_u64(s.wrapping_add(1)),
            });
        }
        self
    }

    /// The canonical fleet scenario: `n` clients (one third each WAN,
    /// lossy-mobile, and jittery) hit by a flash crowd —
    /// [`CrossTraffic::flash_crowd`] with a 2 s quiet lead-in, 3 s ramp
    /// to full backbone saturation, 5 s at the peak, and a 3 s decay.
    pub fn flash_crowd(n: usize, seed: u64) -> FleetScenario {
        let cross = CrossTraffic::flash_crowd(
            Duration::from_secs(2),
            Duration::from_secs(3),
            Duration::from_secs(5),
            Duration::from_secs(3),
            1.0,
        );
        let third = n / 3;
        FleetScenario::new(cross)
            .with_clients(third, ClientProfile::Wan, seed)
            .with_clients(third, ClientProfile::LossyMobile, seed)
            .with_clients(n - 2 * third, ClientProfile::Jittery, seed)
    }

    /// Number of simulated clients.
    pub fn clients(&self) -> usize {
        self.clients.len()
    }

    /// The access profile of client `i`.
    pub fn profile(&self, i: usize) -> ClientProfile {
        self.clients[i].profile
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        self.now
    }

    /// Advances virtual time (moves the whole population to the next
    /// sampling round).
    pub fn advance(&mut self, dt: Duration) {
        self.now += dt;
    }

    /// The backbone cross-traffic load at the current virtual time.
    pub fn load_now(&self) -> f64 {
        self.cross.load_at(self.now)
    }

    /// A deterministic RTT sample for client `i` exchanging
    /// `request_bytes` up and `response_bytes` down at the current
    /// virtual time, with `server_time` of processing in between. Does
    /// not advance the clock: all clients sampled before the next
    /// [`FleetScenario::advance`] see the same congestion epoch.
    pub fn sample_rtt(
        &mut self,
        i: usize,
        request_bytes: usize,
        response_bytes: usize,
        server_time: Duration,
    ) -> Duration {
        let available = 1.0 - self.cross.load_at(self.now);
        let c = &mut self.clients[i];
        let up = c.spec.transfer_time(request_bytes, available);
        let down = c.spec.transfer_time(response_bytes, available);
        let mut rtt = up + server_time + down;
        let p = c.profile.loss_p();
        if p > 0.0 {
            // Same retransmission shape as `SimLink::send`: each lost
            // packet costs one packet serialization plus an RTO of one
            // round-trip of pure latency.
            let packets = (request_bytes + response_bytes).div_ceil(c.spec.mtu).max(1);
            let per_packet = c
                .spec
                .transfer_time(c.spec.mtu.min(request_bytes.max(1)), available)
                .saturating_sub(c.spec.latency);
            let rto = 2 * c.spec.latency;
            for _ in 0..packets {
                if c.loss_rng.gen_f64() < p {
                    rtt += per_packet + rto;
                }
            }
        }
        Duration::from_secs_f64(rtt.as_secs_f64() * c.jitter.factor())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = FleetScenario::flash_crowd(30, seed);
            let mut out = Vec::new();
            for round in 0..5 {
                for i in 0..s.clients() {
                    out.push(s.sample_rtt(i, 400, 4000, Duration::from_micros(200)));
                }
                s.advance(Duration::from_millis(500 * (round + 1)));
            }
            out
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn flash_crowd_degrades_all_profiles_then_recovers() {
        let mut s = FleetScenario::flash_crowd(60, 7);
        let sample_mean = |s: &mut FleetScenario| {
            let n = s.clients();
            let total: f64 = (0..n)
                .map(|i| s.sample_rtt(i, 400, 4000, Duration::ZERO).as_secs_f64())
                .sum();
            total / n as f64
        };
        let quiet = sample_mean(&mut s);
        // Into the peak (2 s quiet + 3 s ramp + 1 s).
        s.advance(Duration::from_secs(6));
        let peak = sample_mean(&mut s);
        // Past the decay (total envelope is 13 s).
        s.advance(Duration::from_secs(10));
        let after = sample_mean(&mut s);
        assert!(peak > quiet * 5.0, "peak {peak} should dwarf quiet {quiet}");
        assert!(after < peak / 5.0, "after {after} vs peak {peak}");
        // One-shot envelope: fully recovered, back to the quiet level
        // within jitter.
        assert!(after < quiet * 2.0, "after {after} vs quiet {quiet}");
    }

    #[test]
    fn profiles_are_ordered_by_erraticness() {
        // Lossy-mobile is slower than WAN on the same backbone; jittery
        // has the same median link but wider spread than WAN.
        let mut s = FleetScenario::new(CrossTraffic::none())
            .with_clients(50, ClientProfile::Wan, 1)
            .with_clients(50, ClientProfile::LossyMobile, 1)
            .with_clients(50, ClientProfile::Jittery, 1);
        let mean_of = |s: &mut FleetScenario, lo: usize, hi: usize| {
            let total: f64 = (lo..hi)
                .map(|i| s.sample_rtt(i, 400, 20_000, Duration::ZERO).as_secs_f64())
                .sum();
            total / (hi - lo) as f64
        };
        let wan = mean_of(&mut s, 0, 50);
        let mobile = mean_of(&mut s, 50, 100);
        assert!(mobile > wan * 2.0, "mobile {mobile} vs wan {wan}");
        let spread_of = |s: &mut FleetScenario, lo: usize, hi: usize| {
            let xs: Vec<f64> = (lo..hi)
                .map(|i| s.sample_rtt(i, 400, 20_000, Duration::ZERO).as_secs_f64())
                .collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mean).abs()).sum::<f64>() / xs.len() as f64 / mean
        };
        let wan_spread = spread_of(&mut s, 0, 50);
        let jittery_spread = spread_of(&mut s, 100, 150);
        assert!(
            jittery_spread > wan_spread * 2.0,
            "jittery {jittery_spread} vs wan {wan_spread}"
        );
    }
}
