//! Cross-traffic schedules: the iperf substitute.
//!
//! §IV-C.1: "To emulate network variations, cross-traffic is introduced
//! using the IPerf tool, which sends UDP packets at varying speeds." A
//! [`CrossTraffic`] schedule maps virtual time to the fraction of link
//! bandwidth consumed by the competing flow.

use std::time::Duration;

/// One schedule segment: `[start, end)` with a constant competing load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Segment start (inclusive).
    pub start: Duration,
    /// Segment end (exclusive).
    pub end: Duration,
    /// Fraction of bandwidth consumed, `0.0..=1.0` (1.0 = the
    /// competing flow saturates the link; see
    /// `LinkSpec::transfer_time`'s saturation model).
    pub load: f64,
}

/// What a *one-shot* schedule reports after its final segment ends.
///
/// Periodic schedules (square wave, staircase) wrap by construction and
/// never consult this. One-shot schedules driven past their definition
/// used to silently drop to zero load — fine for "the crowd left", but
/// a trap for long fleet scenarios that mean "…and it stayed like
/// that". The behavior is now explicit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EndBehavior {
    /// Load drops to zero past the last segment (the default): the
    /// competing flow ends with its schedule.
    #[default]
    Zero,
    /// The final segment's load holds forever.
    HoldLast,
}

/// A deterministic competing-traffic schedule over virtual time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CrossTraffic {
    segments: Vec<Segment>,
    /// Repetition period; `None` means the schedule does not repeat and
    /// [`CrossTraffic::end_behavior`] decides what happens past the
    /// last segment.
    period: Option<Duration>,
    /// One-shot end-of-schedule semantics (gaps *between* segments are
    /// always zero load; this only governs time past the final one).
    end: EndBehavior,
}

impl CrossTraffic {
    /// No competing traffic.
    pub fn none() -> CrossTraffic {
        CrossTraffic::default()
    }

    /// An explicit one-shot schedule (segments must be non-overlapping;
    /// gaps mean zero load). Past the final segment the load drops to
    /// zero unless [`CrossTraffic::hold_last`] is applied.
    pub fn schedule(mut segments: Vec<Segment>) -> CrossTraffic {
        segments.sort_by_key(|s| s.start);
        CrossTraffic {
            segments,
            period: None,
            end: EndBehavior::Zero,
        }
    }

    /// Makes a one-shot schedule hold its final segment's load forever
    /// instead of dropping to zero (builder style). No effect on
    /// periodic schedules, which wrap.
    pub fn hold_last(mut self) -> CrossTraffic {
        self.end = EndBehavior::HoldLast;
        self
    }

    /// The end-of-schedule semantics of this schedule.
    pub fn end_behavior(&self) -> EndBehavior {
        self.end
    }

    /// A repeating square wave: `load` for the first `duty` of every
    /// `period`, idle for the rest. This is the iperf on/off pattern used
    /// by the Fig. 8 experiment.
    pub fn square_wave(period: Duration, duty: Duration, load: f64) -> CrossTraffic {
        CrossTraffic {
            segments: vec![Segment {
                start: Duration::ZERO,
                end: duty,
                load,
            }],
            period: Some(period),
            end: EndBehavior::Zero,
        }
    }

    /// A staircase ramp: load steps through `levels`, holding each for
    /// `step`, then repeats. Models iperf "sending UDP packets at varying
    /// speeds" (Fig. 9).
    pub fn staircase(step: Duration, levels: &[f64]) -> CrossTraffic {
        let mut segments = Vec::with_capacity(levels.len());
        let mut t = Duration::ZERO;
        for &load in levels {
            segments.push(Segment {
                start: t,
                end: t + step,
                load,
            });
            t += step;
        }
        CrossTraffic {
            segments,
            period: Some(t),
            end: EndBehavior::Zero,
        }
    }

    /// A flash-crowd envelope (one-shot): a quiet baseline, a steep
    /// staircase ramp up to `peak`, a sustained peak, then a decay back
    /// down — the overload phase the fleet admission-control scenarios
    /// drive. Past the decay the crowd is gone and load returns to
    /// zero (the recovery phase, [`EndBehavior::Zero`]).
    pub fn flash_crowd(
        quiet: Duration,
        ramp: Duration,
        hold: Duration,
        decay: Duration,
        peak: f64,
    ) -> CrossTraffic {
        const BASELINE: f64 = 0.05;
        const STEPS: u32 = 8;
        let peak = peak.clamp(0.0, 1.0);
        let mut segments = Vec::new();
        let mut t = Duration::ZERO;
        let mut push = |t: &mut Duration, len: Duration, load: f64| {
            if !len.is_zero() {
                segments.push(Segment {
                    start: *t,
                    end: *t + len,
                    load,
                });
                *t += len;
            }
        };
        push(&mut t, quiet, BASELINE);
        for i in 0..STEPS {
            let frac = (i + 1) as f64 / STEPS as f64;
            push(&mut t, ramp / STEPS, BASELINE + (peak - BASELINE) * frac);
        }
        push(&mut t, hold, peak);
        for i in 0..STEPS {
            let frac = 1.0 - (i + 1) as f64 / STEPS as f64;
            push(&mut t, decay / STEPS, BASELINE + (peak - BASELINE) * frac);
        }
        CrossTraffic::schedule(segments)
    }

    /// Competing load at virtual time `t` (0 = idle link). Periodic
    /// schedules wrap; one-shot schedules follow their
    /// [`EndBehavior`] past the final segment.
    pub fn load_at(&self, t: Duration) -> f64 {
        let t = match self.period {
            Some(p) if !p.is_zero() => Duration::from_nanos((t.as_nanos() % p.as_nanos()) as u64),
            _ => t,
        };
        for s in &self.segments {
            if t >= s.start && t < s.end {
                return s.load.clamp(0.0, 1.0);
            }
        }
        if self.period.is_none() && self.end == EndBehavior::HoldLast {
            if let Some(last) = self.segments.last() {
                if t >= last.end {
                    return last.load.clamp(0.0, 1.0);
                }
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn none_is_always_idle() {
        let c = CrossTraffic::none();
        assert_eq!(c.load_at(secs(0)), 0.0);
        assert_eq!(c.load_at(secs(1000)), 0.0);
    }

    #[test]
    fn square_wave_repeats() {
        let c = CrossTraffic::square_wave(secs(10), secs(4), 0.8);
        assert_eq!(c.load_at(secs(0)), 0.8);
        assert_eq!(c.load_at(secs(3)), 0.8);
        assert_eq!(c.load_at(secs(5)), 0.0);
        assert_eq!(c.load_at(secs(13)), 0.8);
        assert_eq!(c.load_at(secs(17)), 0.0);
    }

    #[test]
    fn staircase_steps_through_levels() {
        let c = CrossTraffic::staircase(secs(2), &[0.1, 0.5, 0.9]);
        assert_eq!(c.load_at(secs(1)), 0.1);
        assert_eq!(c.load_at(secs(3)), 0.5);
        assert_eq!(c.load_at(secs(5)), 0.9);
        // Period 6: wraps around.
        assert_eq!(c.load_at(secs(7)), 0.1);
    }

    #[test]
    fn one_shot_schedule_has_gaps_and_end() {
        let c = CrossTraffic::schedule(vec![
            Segment {
                start: secs(5),
                end: secs(10),
                load: 0.7,
            },
            Segment {
                start: secs(20),
                end: secs(25),
                load: 0.4,
            },
        ]);
        assert_eq!(c.load_at(secs(0)), 0.0);
        assert_eq!(c.load_at(secs(7)), 0.7);
        assert_eq!(c.load_at(secs(15)), 0.0);
        assert_eq!(c.load_at(secs(22)), 0.4);
        assert_eq!(c.load_at(secs(100)), 0.0);
        assert_eq!(c.end_behavior(), EndBehavior::Zero);
    }

    #[test]
    fn hold_last_sustains_final_load_past_schedule_end() {
        // Regression for the end-of-schedule audit: a long fleet
        // scenario driven past a one-shot schedule's definition used to
        // silently fall to zero load with no way to say "and it stayed
        // congested". hold_last pins the final segment's load forever.
        let segs = vec![
            Segment {
                start: secs(0),
                end: secs(5),
                load: 0.2,
            },
            Segment {
                start: secs(10),
                end: secs(20),
                load: 0.8,
            },
        ];
        let hold = CrossTraffic::schedule(segs.clone()).hold_last();
        assert_eq!(hold.end_behavior(), EndBehavior::HoldLast);
        // Inside the schedule: unchanged, including the zero-load gap.
        assert_eq!(hold.load_at(secs(2)), 0.2);
        assert_eq!(hold.load_at(secs(7)), 0.0, "gaps stay zero");
        assert_eq!(hold.load_at(secs(15)), 0.8);
        // Past the end: the final load holds, arbitrarily far out.
        assert_eq!(hold.load_at(secs(20)), 0.8);
        assert_eq!(hold.load_at(secs(100_000)), 0.8);
        // The default keeps the documented drop-to-zero semantics.
        assert_eq!(CrossTraffic::schedule(segs).load_at(secs(100_000)), 0.0);
    }

    #[test]
    fn hold_last_does_not_affect_periodic_schedules() {
        let c = CrossTraffic::square_wave(secs(10), secs(4), 0.8).hold_last();
        // Wrapping still wins: t=17 is in the idle half of the wave.
        assert_eq!(c.load_at(secs(17)), 0.0);
        assert_eq!(c.load_at(secs(13)), 0.8);
    }

    #[test]
    fn load_clamped_to_saturation() {
        // Loads above 1.0 clamp to 1.0 (full saturation) — the link
        // model turns that into queueing stall, not a division by zero.
        let c = CrossTraffic::schedule(vec![Segment {
            start: secs(0),
            end: secs(1),
            load: 5.0,
        }]);
        assert_eq!(c.load_at(secs(0)), 1.0);
    }

    #[test]
    fn flash_crowd_has_congestion_phases() {
        let c = CrossTraffic::flash_crowd(secs(10), secs(8), secs(20), secs(8), 1.0);
        // Quiet baseline, then a ramp that reaches full saturation.
        assert!(c.load_at(secs(1)) < 0.1);
        let mid_ramp = c.load_at(secs(14));
        assert!(mid_ramp > 0.2 && mid_ramp < 1.0, "{mid_ramp}");
        assert_eq!(c.load_at(secs(20)), 1.0, "peak holds");
        assert_eq!(c.load_at(secs(37)), 1.0, "peak holds");
        // Decay passes back through intermediate loads, then recovery.
        let mid_decay = c.load_at(secs(42));
        assert!(mid_decay > 0.2 && mid_decay < 1.0, "{mid_decay}");
        assert_eq!(c.load_at(secs(60)), 0.0, "crowd gone: recovery");
        // Ramp is monotonically non-decreasing.
        let mut prev = 0.0;
        for s in 10..18 {
            let l = c.load_at(secs(s));
            assert!(l >= prev, "ramp decreased at {s}s");
            prev = l;
        }
    }
}
