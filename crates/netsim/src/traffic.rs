//! Cross-traffic schedules: the iperf substitute.
//!
//! §IV-C.1: "To emulate network variations, cross-traffic is introduced
//! using the IPerf tool, which sends UDP packets at varying speeds." A
//! [`CrossTraffic`] schedule maps virtual time to the fraction of link
//! bandwidth consumed by the competing flow.

use std::time::Duration;

/// One schedule segment: `[start, end)` with a constant competing load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Segment start (inclusive).
    pub start: Duration,
    /// Segment end (exclusive).
    pub end: Duration,
    /// Fraction of bandwidth consumed, `0.0..=0.95`.
    pub load: f64,
}

/// A deterministic competing-traffic schedule over virtual time.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CrossTraffic {
    segments: Vec<Segment>,
    /// Repetition period; `None` means the schedule does not repeat and
    /// load is zero past the last segment.
    period: Option<Duration>,
}

impl CrossTraffic {
    /// No competing traffic.
    pub fn none() -> CrossTraffic {
        CrossTraffic::default()
    }

    /// An explicit one-shot schedule (segments must be non-overlapping;
    /// gaps mean zero load).
    pub fn schedule(mut segments: Vec<Segment>) -> CrossTraffic {
        segments.sort_by_key(|s| s.start);
        CrossTraffic {
            segments,
            period: None,
        }
    }

    /// A repeating square wave: `load` for the first `duty` of every
    /// `period`, idle for the rest. This is the iperf on/off pattern used
    /// by the Fig. 8 experiment.
    pub fn square_wave(period: Duration, duty: Duration, load: f64) -> CrossTraffic {
        CrossTraffic {
            segments: vec![Segment {
                start: Duration::ZERO,
                end: duty,
                load,
            }],
            period: Some(period),
        }
    }

    /// A staircase ramp: load steps through `levels`, holding each for
    /// `step`, then repeats. Models iperf "sending UDP packets at varying
    /// speeds" (Fig. 9).
    pub fn staircase(step: Duration, levels: &[f64]) -> CrossTraffic {
        let mut segments = Vec::with_capacity(levels.len());
        let mut t = Duration::ZERO;
        for &load in levels {
            segments.push(Segment {
                start: t,
                end: t + step,
                load,
            });
            t += step;
        }
        CrossTraffic {
            segments,
            period: Some(t),
        }
    }

    /// Competing load at virtual time `t` (0 = idle link).
    pub fn load_at(&self, t: Duration) -> f64 {
        let t = match self.period {
            Some(p) if !p.is_zero() => Duration::from_nanos((t.as_nanos() % p.as_nanos()) as u64),
            _ => t,
        };
        for s in &self.segments {
            if t >= s.start && t < s.end {
                return s.load.clamp(0.0, 0.95);
            }
        }
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Duration {
        Duration::from_secs(s)
    }

    #[test]
    fn none_is_always_idle() {
        let c = CrossTraffic::none();
        assert_eq!(c.load_at(secs(0)), 0.0);
        assert_eq!(c.load_at(secs(1000)), 0.0);
    }

    #[test]
    fn square_wave_repeats() {
        let c = CrossTraffic::square_wave(secs(10), secs(4), 0.8);
        assert_eq!(c.load_at(secs(0)), 0.8);
        assert_eq!(c.load_at(secs(3)), 0.8);
        assert_eq!(c.load_at(secs(5)), 0.0);
        assert_eq!(c.load_at(secs(13)), 0.8);
        assert_eq!(c.load_at(secs(17)), 0.0);
    }

    #[test]
    fn staircase_steps_through_levels() {
        let c = CrossTraffic::staircase(secs(2), &[0.1, 0.5, 0.9]);
        assert_eq!(c.load_at(secs(1)), 0.1);
        assert_eq!(c.load_at(secs(3)), 0.5);
        assert_eq!(c.load_at(secs(5)), 0.9);
        // Period 6: wraps around.
        assert_eq!(c.load_at(secs(7)), 0.1);
    }

    #[test]
    fn one_shot_schedule_has_gaps_and_end() {
        let c = CrossTraffic::schedule(vec![
            Segment {
                start: secs(5),
                end: secs(10),
                load: 0.7,
            },
            Segment {
                start: secs(20),
                end: secs(25),
                load: 0.4,
            },
        ]);
        assert_eq!(c.load_at(secs(0)), 0.0);
        assert_eq!(c.load_at(secs(7)), 0.7);
        assert_eq!(c.load_at(secs(15)), 0.0);
        assert_eq!(c.load_at(secs(22)), 0.4);
        assert_eq!(c.load_at(secs(100)), 0.0);
    }

    #[test]
    fn load_clamped_below_one() {
        let c = CrossTraffic::schedule(vec![Segment {
            start: secs(0),
            end: secs(1),
            load: 5.0,
        }]);
        assert_eq!(c.load_at(secs(0)), 0.95);
    }
}
