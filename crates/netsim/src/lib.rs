//! Deterministic network simulation standing in for the paper's physical
//! testbed.
//!
//! The paper's experiments run over (a) a 100 Mbps laboratory Ethernet and
//! (b) an ADSL line with "peak bandwidth of about 1 Mbps", with congestion
//! created by iperf UDP cross-traffic (§IV-B, §IV-C). None of that hardware
//! is available here, so transfers are *modeled*: a transfer of `n` bytes
//! over a link costs
//!
//! ```text
//! latency + (n + ceil(n/mtu) * per_packet_overhead) * 8 / effective_bandwidth
//! ```
//!
//! where `effective_bandwidth = bandwidth * (1 - cross_traffic_load(t))`.
//! Cross-traffic load is a deterministic schedule over virtual time, which
//! reproduces the congestion phases of Figs. 8-9 exactly and repeatably.
//! Optional seeded jitter adds realistic measurement noise without
//! sacrificing reproducibility.
//!
//! The *shape* of every paper result (who wins, crossover points, the
//! benefit of adapting message sizes to congestion) depends only on these
//! first-order quantities; see DESIGN.md §1 for the substitution argument.

use sbq_runtime::SmallRng;
use std::time::Duration;

pub mod clock;
pub mod scenario;
pub mod traffic;

pub use clock::SimClock;
pub use scenario::{ClientProfile, FleetScenario};
pub use traffic::{CrossTraffic, EndBehavior, Segment};

/// Static description of a network link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Human-readable name used in benchmark output.
    pub name: String,
    /// Raw link bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way propagation delay.
    pub latency: Duration,
    /// Frame/packet header bytes charged per MTU-sized chunk (Ethernet +
    /// IP + TCP ≈ 58 bytes, rounded to 60 to cover options).
    pub per_packet_overhead: usize,
    /// Maximum payload bytes per packet.
    pub mtu: usize,
}

impl LinkSpec {
    /// The paper's high-end link: single-hop 100 Mbps lab Ethernet.
    pub fn lan_100mbps() -> LinkSpec {
        LinkSpec {
            name: "100Mbps LAN".to_string(),
            bandwidth_bps: 100e6,
            latency: Duration::from_micros(100),
            per_packet_overhead: 60,
            mtu: 1460,
        }
    }

    /// An 11 Mbps wireless link with wide-area-ish latency — the
    /// "in-vehicle camera sensors … using wireless links with limited
    /// bandwidths" scenario of the paper's introduction. Pair with
    /// [`SimLink::with_loss`] for the characteristic retransmissions.
    pub fn wireless_11mbps() -> LinkSpec {
        LinkSpec {
            name: "11Mbps wireless".to_string(),
            bandwidth_bps: 11e6,
            latency: Duration::from_millis(3),
            per_packet_overhead: 80, // 802.11-style framing
            mtu: 1460,
        }
    }

    /// The paper's low-end link: home ADSL, "peak bandwidth of about
    /// 1 Mbps", wide-area latency.
    pub fn adsl() -> LinkSpec {
        LinkSpec {
            name: "ADSL".to_string(),
            bandwidth_bps: 1e6,
            latency: Duration::from_millis(12),
            per_packet_overhead: 60,
            mtu: 1460,
        }
    }

    /// A wide-area path: decent bandwidth but continental latency, the
    /// regime where RTT (not serialization) dominates small calls.
    pub fn wan() -> LinkSpec {
        LinkSpec {
            name: "WAN".to_string(),
            bandwidth_bps: 20e6,
            latency: Duration::from_millis(40),
            per_packet_overhead: 60,
            mtu: 1460,
        }
    }

    /// A cellular uplink: low bandwidth, high latency, heavy framing.
    /// Pair with [`SimLink::with_loss`] (see [`SimLink::lossy_mobile`])
    /// for the characteristic retransmission-driven erraticness.
    pub fn mobile_2mbps() -> LinkSpec {
        LinkSpec {
            name: "2Mbps mobile".to_string(),
            bandwidth_bps: 2e6,
            latency: Duration::from_millis(60),
            per_packet_overhead: 80,
            mtu: 1400,
        }
    }

    /// One-way time to move `bytes` when `available` ∈ (0, 1] of the
    /// bandwidth is free.
    ///
    /// Out-of-domain values are mapped, never trusted: `NaN` and values
    /// above 1 mean an idle link, values at or below 0 mean full
    /// saturation — they must never reach the bandwidth division.
    ///
    /// Up to the saturation knee (≥ 5 % of the bandwidth free) the
    /// competing flow simply takes its share. Past the knee the share
    /// stops shrinking and explicit queueing delay takes over, growing
    /// quadratically to [`SATURATION_STALL_FACTOR`]× the knee time at
    /// load 1.0 — continuous at the knee, finite and deterministic at
    /// full saturation, and steep enough to reproduce the congestion
    /// knee of the Figs. 8–9 scenarios (the old model silently clamped
    /// `available` to 0.05, so a fully saturated link ran at a phantom
    /// 5 % share instead of stalling).
    pub fn transfer_time(&self, bytes: usize, available: f64) -> Duration {
        let available = if available.is_nan() {
            1.0
        } else {
            available.clamp(0.0, 1.0)
        };
        let packets = bytes.div_ceil(self.mtu).max(1);
        let total_bits = ((bytes + packets * self.per_packet_overhead) * 8) as f64;
        let share = available.max(SATURATION_KNEE_AVAILABLE);
        let mut secs = total_bits / (self.bandwidth_bps * share);
        if available < SATURATION_KNEE_AVAILABLE {
            let depth = (SATURATION_KNEE_AVAILABLE - available) / SATURATION_KNEE_AVAILABLE;
            secs *= 1.0 + (SATURATION_STALL_FACTOR - 1.0) * depth * depth;
        }
        self.latency + Duration::from_secs_f64(secs)
    }
}

/// Free-bandwidth fraction below which a link counts as *saturated*:
/// past this point additional load buys queueing delay rather than a
/// smaller bandwidth share (which would divide by ~zero).
pub const SATURATION_KNEE_AVAILABLE: f64 = 0.05;

/// Transfer-time multiplier at full saturation (load = 1.0) relative to
/// the knee: a fully saturated link effectively stalls.
pub const SATURATION_STALL_FACTOR: f64 = 64.0;

/// Multiplicative measurement noise driven by a seeded RNG.
#[derive(Debug, Clone)]
pub struct Jitter {
    rng: SmallRng,
    /// Maximum relative deviation, e.g. 0.05 for ±5 %.
    amplitude: f64,
}

impl Jitter {
    /// Creates jitter with the given seed and relative amplitude.
    pub fn new(seed: u64, amplitude: f64) -> Jitter {
        Jitter {
            rng: SmallRng::seed_from_u64(seed),
            amplitude: amplitude.max(0.0),
        }
    }

    /// A multiplicative factor in `[1-a, 1+a]`.
    pub fn factor(&mut self) -> f64 {
        1.0 + self.amplitude * (self.rng.gen_f64() * 2.0 - 1.0)
    }
}

/// A simulated link instance: spec + cross-traffic schedule + virtual
/// clock + optional jitter + byte counters.
#[derive(Debug, Clone)]
pub struct SimLink {
    /// Link parameters.
    pub spec: LinkSpec,
    /// Competing load over virtual time.
    pub cross: CrossTraffic,
    clock: SimClock,
    jitter: Option<Jitter>,
    loss: Option<LossModel>,
    bytes_moved: u64,
    transfers: u64,
    retransmissions: u64,
}

/// Per-packet loss with go-back retransmission, modeled as an expected
/// per-packet time inflation plus seeded discrete retransmission events
/// for bursts.
#[derive(Debug, Clone)]
struct LossModel {
    /// Independent per-packet loss probability.
    p: f64,
    rng: SmallRng,
}

impl SimLink {
    /// A quiet link with no jitter or loss.
    pub fn new(spec: LinkSpec) -> SimLink {
        SimLink {
            spec,
            cross: CrossTraffic::none(),
            clock: SimClock::new(),
            jitter: None,
            loss: None,
            bytes_moved: 0,
            transfers: 0,
            retransmissions: 0,
        }
    }

    /// A lossy-mobile profile: [`LinkSpec::mobile_2mbps`] with 3 %
    /// per-packet loss and ±15 % measurement jitter — slow *and*
    /// erratic, the paper's in-vehicle wireless scenario pushed to
    /// cellular conditions.
    pub fn lossy_mobile(seed: u64) -> SimLink {
        SimLink::new(LinkSpec::mobile_2mbps())
            .with_loss(seed, 0.03)
            .with_jitter(seed.wrapping_add(1), 0.15)
    }

    /// A jittery-WAN profile: [`LinkSpec::wan`] with ±30 % measurement
    /// jitter and no loss — healthy on average, erratic sample to
    /// sample, the case that separates variance-aware estimators from
    /// plain EWMA.
    pub fn jittery(seed: u64) -> SimLink {
        SimLink::new(LinkSpec::wan()).with_jitter(seed, 0.30)
    }

    /// Installs a per-packet loss probability `p` (0..1). Lost packets are
    /// retransmitted: each loss adds one packet's serialization time plus
    /// a retransmission timeout of one RTT, which is what makes lossy
    /// wireless links *erratic* rather than merely slow.
    pub fn with_loss(mut self, seed: u64, p: f64) -> SimLink {
        self.loss = Some(LossModel {
            p: p.clamp(0.0, 0.5),
            rng: SmallRng::seed_from_u64(seed),
        });
        self
    }

    /// Installs a cross-traffic schedule.
    pub fn with_cross_traffic(mut self, cross: CrossTraffic) -> SimLink {
        self.cross = cross;
        self
    }

    /// Installs seeded measurement jitter.
    pub fn with_jitter(mut self, seed: u64, amplitude: f64) -> SimLink {
        self.jitter = Some(Jitter::new(seed, amplitude));
        self
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        self.clock.now()
    }

    /// Advances virtual time without transferring (models think time or
    /// server compute).
    pub fn advance(&mut self, dt: Duration) {
        self.clock.advance(dt);
    }

    /// Simulates a one-way transfer of `bytes` starting now; advances the
    /// clock by the transfer time and returns it.
    pub fn send(&mut self, bytes: usize) -> Duration {
        let available = 1.0 - self.cross.load_at(self.clock.now());
        let mut t = self.spec.transfer_time(bytes, available);
        if let Some(j) = &mut self.jitter {
            t = Duration::from_secs_f64(t.as_secs_f64() * j.factor());
        }
        if let Some(loss) = &mut self.loss {
            let packets = bytes.div_ceil(self.spec.mtu).max(1);
            let per_packet = self
                .spec
                .transfer_time(self.spec.mtu.min(bytes.max(1)), available)
                .saturating_sub(self.spec.latency);
            let rto = 2 * self.spec.latency;
            let mut lost = 0u64;
            for _ in 0..packets {
                if loss.rng.gen_f64() < loss.p {
                    lost += 1;
                }
            }
            if lost > 0 {
                t += (per_packet + rto) * lost as u32;
                self.retransmissions += lost;
            }
        }
        self.clock.advance(t);
        self.bytes_moved += bytes as u64;
        self.transfers += 1;
        t
    }

    /// Packets retransmitted so far (loss model only).
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Simulates a request/response exchange: request transfer, server
    /// processing time, response transfer. Returns the full round-trip
    /// time (what the paper's RTT estimator sees).
    pub fn request_response(
        &mut self,
        request_bytes: usize,
        response_bytes: usize,
        server_time: Duration,
    ) -> Duration {
        let t1 = self.send(request_bytes);
        self.clock.advance(server_time);
        let t2 = self.send(response_bytes);
        t1 + server_time + t2
    }

    /// Total payload bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Number of transfers performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_beats_adsl() {
        let lan = LinkSpec::lan_100mbps();
        let adsl = LinkSpec::adsl();
        let n = 100_000;
        assert!(lan.transfer_time(n, 1.0) < adsl.transfer_time(n, 1.0) / 20);
    }

    #[test]
    fn transfer_time_scales_roughly_linearly() {
        let lan = LinkSpec::lan_100mbps();
        let t1 = lan.transfer_time(100_000, 1.0).as_secs_f64();
        let t2 = lan.transfer_time(1_000_000, 1.0).as_secs_f64();
        let ratio = t2 / t1;
        assert!((8.0..12.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn small_messages_dominated_by_latency() {
        let lan = LinkSpec::lan_100mbps();
        let t = lan.transfer_time(64, 1.0);
        assert!(t < lan.latency * 2);
    }

    #[test]
    fn congestion_slows_transfers() {
        let spec = LinkSpec::adsl();
        let free = spec.transfer_time(50_000, 1.0);
        let busy = spec.transfer_time(50_000, 0.25);
        assert!(busy > free * 3);
    }

    #[test]
    fn out_of_domain_availability_is_mapped_not_trusted() {
        let spec = LinkSpec::adsl();
        // Zero availability means full saturation: finite (no division
        // by zero) but stalled, far beyond the 5 %-share knee time.
        let t = spec.transfer_time(1000, 0.0);
        assert!(t.as_secs_f64().is_finite());
        assert!(t > spec.transfer_time(1000, SATURATION_KNEE_AVAILABLE) * 10);
        // Above-1 and NaN inputs mean an idle link.
        assert_eq!(
            spec.transfer_time(1000, 42.0),
            spec.transfer_time(1000, 1.0)
        );
        assert_eq!(
            spec.transfer_time(1000, f64::NAN),
            spec.transfer_time(1000, 1.0)
        );
        // Negative availability is full saturation, same as zero.
        assert_eq!(
            spec.transfer_time(1000, -3.0),
            spec.transfer_time(1000, 0.0)
        );
    }

    #[test]
    fn saturation_knee_shape() {
        // Regression: the old model clamped `available` to 0.05, so a
        // flash-crowd load of 1.0 moved bytes at a phantom 5 % share
        // instead of stalling — flattening the congestion knee.
        let spec = LinkSpec::adsl();
        let n = 50_000;
        // Transfer time is monotonically non-increasing in availability.
        let avail = [1.0, 0.5, 0.1, 0.05, 0.04, 0.02, 0.01, 0.0];
        for pair in avail.windows(2) {
            assert!(
                spec.transfer_time(n, pair[1]) >= spec.transfer_time(n, pair[0]),
                "monotone at {} vs {}",
                pair[1],
                pair[0]
            );
        }
        // Continuous at the knee: just past it costs barely more.
        let at_knee = spec
            .transfer_time(n, SATURATION_KNEE_AVAILABLE)
            .as_secs_f64();
        let past_knee = spec
            .transfer_time(n, SATURATION_KNEE_AVAILABLE - 1e-4)
            .as_secs_f64();
        assert!(
            (past_knee - at_knee) / at_knee < 0.05,
            "{at_knee} vs {past_knee}"
        );
        // Full saturation stalls: the documented factor over knee time.
        let stalled = spec.transfer_time(n, 0.0).as_secs_f64();
        let lat = spec.latency.as_secs_f64();
        let factor = (stalled - lat) / (at_knee - lat);
        assert!(
            (factor - SATURATION_STALL_FACTOR).abs() < 1.0,
            "stall factor {factor}"
        );
        // Superlinear growth past the knee: the last 2 % of load costs
        // more than the 2 % before it.
        let a = spec.transfer_time(n, 0.04).as_secs_f64();
        let b = spec.transfer_time(n, 0.02).as_secs_f64();
        let c = spec.transfer_time(n, 0.0).as_secs_f64();
        assert!(c - b > b - a, "queueing delay must accelerate");
    }

    #[test]
    fn sim_link_advances_clock_and_counts() {
        let mut link = SimLink::new(LinkSpec::lan_100mbps());
        assert_eq!(link.now(), Duration::ZERO);
        let t = link.send(10_000);
        assert_eq!(link.now(), t);
        assert_eq!(link.bytes_moved(), 10_000);
        assert_eq!(link.transfers(), 1);
    }

    #[test]
    fn request_response_includes_server_time() {
        let mut link = SimLink::new(LinkSpec::lan_100mbps());
        let server = Duration::from_millis(5);
        let rtt = link.request_response(100, 100, server);
        assert!(rtt >= server);
        assert_eq!(link.now(), rtt);
    }

    #[test]
    fn jitter_is_deterministic_per_seed() {
        let run = |seed| {
            let mut link = SimLink::new(LinkSpec::adsl()).with_jitter(seed, 0.1);
            (0..10).map(|_| link.send(5000)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn cross_traffic_applied_over_time() {
        let cross = CrossTraffic::square_wave(Duration::from_secs(10), Duration::from_secs(5), 0.9);
        let mut link = SimLink::new(LinkSpec::adsl()).with_cross_traffic(cross);
        // First window: congested (load 0.9).
        let busy = link.send(20_000);
        // Jump to the quiet half of the wave.
        link.advance(Duration::from_secs(6));
        let quiet = link.send(20_000);
        assert!(busy > quiet * 3, "busy={busy:?} quiet={quiet:?}");
    }
}

#[cfg(test)]
mod loss_tests {
    use super::*;

    #[test]
    fn loss_slows_and_counts_retransmissions() {
        let clean = {
            let mut l = SimLink::new(LinkSpec::wireless_11mbps());
            (0..50).map(|_| l.send(100_000)).sum::<Duration>()
        };
        let mut lossy = SimLink::new(LinkSpec::wireless_11mbps()).with_loss(3, 0.05);
        let lossy_total = (0..50).map(|_| lossy.send(100_000)).sum::<Duration>();
        assert!(lossy_total > clean, "{lossy_total:?} vs {clean:?}");
        // ~5% of 50 * 69 packets ≈ 170 retransmissions.
        let r = lossy.retransmissions();
        assert!((50..400).contains(&r), "retransmissions {r}");
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let run = |seed| {
            let mut l = SimLink::new(LinkSpec::wireless_11mbps()).with_loss(seed, 0.1);
            (0..20).map(|_| l.send(50_000)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn zero_loss_is_identity() {
        let mut a = SimLink::new(LinkSpec::wireless_11mbps());
        let mut b = SimLink::new(LinkSpec::wireless_11mbps()).with_loss(1, 0.0);
        for _ in 0..10 {
            assert_eq!(a.send(30_000), b.send(30_000));
        }
        assert_eq!(b.retransmissions(), 0);
    }

    #[test]
    fn loss_probability_clamped() {
        // p = 0.9 clamps to 0.5: the model stays finite.
        let mut l = SimLink::new(LinkSpec::wireless_11mbps()).with_loss(1, 0.9);
        let t = l.send(100_000);
        assert!(t < Duration::from_secs(5));
    }
}
