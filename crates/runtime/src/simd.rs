//! Explicit-SIMD bulk kernels for the marshal hot path.
//!
//! The conversion-plan bulk kernels (byte swap, sign-extending widen,
//! `f32`→`f64`) and the XML escape scanner bottom out here. Each kernel
//! exists in up to three tiers:
//!
//! | tier     | instruction set      | kernels                              |
//! |----------|----------------------|--------------------------------------|
//! | `Scalar` | portable Rust        | everything (the reference semantics) |
//! | `Sse2`   | SSE2 (x86-64 baseline) | `escape_scan`, 16/32/64-bit byte swap |
//! | `Avx2`   | AVX2                 | all of the above 32 bytes at a time, plus widen/convert |
//!
//! The tier is chosen **once per process**: [`level`] consults
//! `is_x86_feature_detected!` (and the `SBQ_NO_SIMD` environment override)
//! on first use and latches the answer in an atomic, so the hot path pays
//! one relaxed load, not a CPUID. Every SIMD kernel has a scalar twin with
//! identical bit-for-bit semantics; the parity property tests in this
//! module and in `sbq-pbio` hold the two together across widths, byte
//! orders, misaligned inputs, and vector-boundary lengths.
//!
//! Large destinations additionally switch the 64-bit swap kernel to
//! non-temporal (streaming) stores: a multi-megabyte decode writes each
//! cache line exactly once without first reading it for ownership, which
//! is worth ~1.5x on payloads that outgrow the last-level cache.
//!
//! # Safety model
//!
//! All public kernels are safe functions over slices; lengths are checked
//! at the boundary (`assert!`/`debug_assert!` plus explicit remainders).
//! The `unsafe` inside is confined to (a) calling `#[target_feature]`
//! functions after the latched runtime detection proved the feature is
//! present, and (b) raw-pointer loads/stores that stay inside the slice
//! bounds established by the surrounding chunk arithmetic. Destinations
//! are `MaybeUninit` slices so decode can fill freshly reserved `Vec`
//! capacity without a zeroing pass; every kernel writes every element of
//! `dst` before returning (the contract `set_len` callers rely on).

use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU8, Ordering};

// ---------------------------------------------------------------------------
// Tier detection
// ---------------------------------------------------------------------------

/// Kernel tier in ascending capability order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SimdLevel {
    /// Portable scalar fallbacks only.
    Scalar = 0,
    /// SSE2 kernels (always available on x86-64 unless disabled).
    Sse2 = 1,
    /// AVX2 kernels.
    Avx2 = 2,
}

impl SimdLevel {
    /// Stable lowercase name for metrics and bench output.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// What the hardware supports, ignoring overrides. On non-x86-64 targets
/// this is always `Scalar`.
// The `return`s are needed: the cfg'd block must diverge so the
// non-x86 tail expression type-checks on both configurations.
#[allow(clippy::needless_return)]
pub fn detected_level() -> SimdLevel {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        // SSE2 is part of the x86-64 baseline.
        return SimdLevel::Sse2;
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    SimdLevel::Scalar
}

/// Pure tier-selection policy: the detected hardware level, demoted to
/// `Scalar` when the `SBQ_NO_SIMD` override is set (any non-empty value
/// other than `0`). Split out from [`level`] so the policy is testable
/// without process-global state.
pub fn select_level(detected: SimdLevel, no_simd_env: Option<&str>) -> SimdLevel {
    match no_simd_env {
        Some(v) if !v.is_empty() && v != "0" => SimdLevel::Scalar,
        _ => detected,
    }
}

const LEVEL_UNSET: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn level_from_u8(v: u8) -> SimdLevel {
    match v {
        1 => SimdLevel::Sse2,
        2 => SimdLevel::Avx2,
        _ => SimdLevel::Scalar,
    }
}

/// The active kernel tier, decided once per process and latched: runtime
/// feature detection (`is_x86_feature_detected!`) demoted by the
/// `SBQ_NO_SIMD` environment override. Hot paths pay one relaxed atomic
/// load per call.
pub fn level() -> SimdLevel {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != LEVEL_UNSET {
        return level_from_u8(v);
    }
    let env = std::env::var("SBQ_NO_SIMD").ok();
    let l = select_level(detected_level(), env.as_deref());
    // A racing initializer computes the same value; either store wins.
    LEVEL.store(l as u8, Ordering::Relaxed);
    l
}

/// Destinations at or above this many bytes use non-temporal stores in
/// the 64-bit swap kernel (past LLC-resident sizes, write-allocate
/// traffic costs more than it saves).
const NT_THRESHOLD: usize = 4 << 20;

// ---------------------------------------------------------------------------
// Scalar reference kernels
// ---------------------------------------------------------------------------

/// Portable reference implementations. Public so benchmarks and parity
/// tests can pin the dispatched kernels against exact scalar semantics.
pub mod scalar {
    use super::MaybeUninit;

    /// Byte-swaps `width`-byte elements from `src` into `dst`.
    /// `src.len() == dst.len()` and both are multiples of `width`.
    pub fn bswap(width: usize, src: &[u8], dst: &mut [MaybeUninit<u8>]) {
        assert_eq!(src.len(), dst.len());
        assert!(src.len().is_multiple_of(width));
        for (s, d) in src.chunks_exact(width).zip(dst.chunks_exact_mut(width)) {
            for i in 0..width {
                d[i].write(s[width - 1 - i]);
            }
        }
    }

    /// Decodes `width`-byte integers (sign-extending) into `i64`s.
    /// `swap` means the wire order is the reverse of host order.
    pub fn decode_i64(src: &[u8], width: usize, swap: bool, dst: &mut [MaybeUninit<i64>]) {
        assert_eq!(src.len(), dst.len() * width);
        let shift = (8 - width) * 8;
        for (s, d) in src.chunks_exact(width).zip(dst.iter_mut()) {
            let mut tmp = [0u8; 8];
            tmp[..width].copy_from_slice(s);
            let mut raw = i64::from_ne_bytes(tmp);
            if swap {
                // Wire bytes reversed: swap the full 8, then shift the
                // element down from the top.
                raw = i64::from_ne_bytes(tmp).swap_bytes() >> (shift.min(56));
                if shift >= 8 {
                    // swap_bytes moved the element to the high bytes;
                    // arithmetic shift already sign-extended it.
                    d.write(raw);
                    continue;
                }
            }
            d.write((raw << shift) >> shift);
        }
    }

    /// Decodes `width`-byte floats (4 or 8) into `f64`s.
    pub fn decode_f64(src: &[u8], width: usize, swap: bool, dst: &mut [MaybeUninit<f64>]) {
        assert_eq!(src.len(), dst.len() * width);
        match width {
            8 => {
                for (s, d) in src.chunks_exact(8).zip(dst.iter_mut()) {
                    let raw = u64::from_ne_bytes(s.try_into().expect("chunks_exact"));
                    let raw = if swap { raw.swap_bytes() } else { raw };
                    d.write(f64::from_bits(raw));
                }
            }
            4 => {
                for (s, d) in src.chunks_exact(4).zip(dst.iter_mut()) {
                    let raw = u32::from_ne_bytes(s.try_into().expect("chunks_exact"));
                    let raw = if swap { raw.swap_bytes() } else { raw };
                    d.write(f32::from_bits(raw) as f64);
                }
            }
            _ => unreachable!("float widths are 4 or 8"),
        }
    }

    /// Encodes `i64`s as `width`-byte wire integers (truncating to the
    /// low `width` bytes, reversed when `swap`).
    pub fn encode_i64(src: &[i64], width: usize, swap: bool, dst: &mut [MaybeUninit<u8>]) {
        assert_eq!(dst.len(), src.len() * width);
        for (x, d) in src.iter().zip(dst.chunks_exact_mut(width)) {
            let le = x.to_ne_bytes();
            if swap {
                for i in 0..width {
                    d[i].write(le[width - 1 - i]);
                }
            } else {
                for i in 0..width {
                    d[i].write(le[i]);
                }
            }
        }
    }

    /// Encodes `f64`s as `width`-byte wire floats (4 narrows through
    /// `f32`, like the per-element path always has).
    pub fn encode_f64(src: &[f64], width: usize, swap: bool, dst: &mut [MaybeUninit<u8>]) {
        assert_eq!(dst.len(), src.len() * width);
        match width {
            8 => {
                for (x, d) in src.iter().zip(dst.chunks_exact_mut(8)) {
                    let raw = if swap {
                        x.to_bits().swap_bytes()
                    } else {
                        x.to_bits()
                    };
                    for (i, b) in raw.to_ne_bytes().iter().enumerate() {
                        d[i].write(*b);
                    }
                }
            }
            4 => {
                for (x, d) in src.iter().zip(dst.chunks_exact_mut(4)) {
                    let raw = (*x as f32).to_bits();
                    let raw = if swap { raw.swap_bytes() } else { raw };
                    for (i, b) in raw.to_ne_bytes().iter().enumerate() {
                        d[i].write(*b);
                    }
                }
            }
            _ => unreachable!("float widths are 4 or 8"),
        }
    }

    /// Index of the first byte needing XML escaping (`&`, `<`, `>`, plus
    /// `"` and `'` in attribute context), or `len` if the span is clean.
    pub fn escape_scan(bytes: &[u8], attr: bool) -> usize {
        bytes
            .iter()
            .position(|&b| matches!(b, b'&' | b'<' | b'>') || (attr && matches!(b, b'"' | b'\'')))
            .unwrap_or(bytes.len())
    }
}

// ---------------------------------------------------------------------------
// x86-64 kernels
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::MaybeUninit;
    use std::arch::x86_64::*;

    /// 32-byte shuffle mask reversing each 8-byte lane-local group.
    const BSWAP64_MASK: [u8; 32] = [
        7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8, //
        7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12, 11, 10, 9, 8,
    ];
    const BSWAP32_MASK: [u8; 32] = [
        3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12, //
        3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12,
    ];
    const BSWAP16_MASK: [u8; 32] = [
        1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14, //
        1, 0, 3, 2, 5, 4, 7, 6, 9, 8, 11, 10, 13, 12, 15, 14,
    ];

    /// AVX2 byte swap: 32 source bytes per iteration through
    /// `vpshufb`; the remainder (< 32 bytes) runs the scalar kernel.
    /// When `stream` is set the main loop uses non-temporal stores
    /// (dst is first advanced scalar-wise to 32-byte alignment).
    ///
    /// # Safety
    /// Caller must have verified AVX2 support. Slice bounds are enforced
    /// by the assertions; every `dst` byte is written.
    #[target_feature(enable = "avx2")]
    pub unsafe fn bswap_avx2(width: usize, src: &[u8], dst: &mut [MaybeUninit<u8>], stream: bool) {
        assert_eq!(src.len(), dst.len());
        assert!(src.len().is_multiple_of(width));
        let mask = unsafe {
            _mm256_loadu_si256(match width {
                8 => BSWAP64_MASK.as_ptr().cast(),
                4 => BSWAP32_MASK.as_ptr().cast(),
                2 => BSWAP16_MASK.as_ptr().cast(),
                _ => unreachable!("bswap widths are 2, 4, 8"),
            })
        };
        let mut i = 0usize;
        let n = src.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr().cast::<u8>();
        if stream {
            // Scalar prologue until dst is 32-byte aligned (element
            // alignment preserved because widths divide 32).
            let mis = dp.align_offset(32);
            if mis != 0 && mis < n {
                let head = mis.next_multiple_of(width).min(n);
                super::scalar::bswap(width, &src[..head], &mut dst[..head]);
                i = head;
            }
            if dp.wrapping_add(i).align_offset(32) == 0 {
                while i + 32 <= n {
                    // SAFETY: i+32 <= n bounds both slices; dst+i is
                    // 32-byte aligned per the prologue.
                    unsafe {
                        let v = _mm256_loadu_si256(sp.add(i).cast());
                        _mm256_stream_si256(dp.add(i).cast(), _mm256_shuffle_epi8(v, mask));
                    }
                    i += 32;
                }
                // Make the streamed bytes globally visible before the
                // caller reads them back.
                _mm_sfence();
            }
        }
        while i + 32 <= n {
            // SAFETY: i+32 <= n bounds both the load and the store.
            unsafe {
                let v = _mm256_loadu_si256(sp.add(i).cast());
                _mm256_storeu_si256(dp.add(i).cast(), _mm256_shuffle_epi8(v, mask));
            }
            i += 32;
        }
        if i < n {
            super::scalar::bswap(width, &src[i..], &mut dst[i..]);
        }
    }

    /// SSE2 byte swap (no `pshufb`): 16-bit halves swapped with shifts,
    /// wider elements additionally word-shuffled.
    ///
    /// # Safety
    /// SSE2 is part of the x86-64 baseline; slice bounds are asserted.
    #[target_feature(enable = "sse2")]
    pub unsafe fn bswap_sse2(width: usize, src: &[u8], dst: &mut [MaybeUninit<u8>]) {
        assert_eq!(src.len(), dst.len());
        assert!(src.len().is_multiple_of(width));
        let mut i = 0usize;
        let n = src.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr().cast::<u8>();
        while i + 16 <= n {
            // SAFETY: i+16 <= n bounds both the load and the store.
            unsafe {
                let v = _mm_loadu_si128(sp.add(i).cast());
                // Swap bytes within each 16-bit word.
                let w = _mm_or_si128(_mm_srli_epi16(v, 8), _mm_slli_epi16(v, 8));
                let out = match width {
                    2 => w,
                    4 => {
                        // Swap 16-bit words within each 32-bit element.
                        let lo = _mm_shufflelo_epi16(w, 0b10_11_00_01);
                        _mm_shufflehi_epi16(lo, 0b10_11_00_01)
                    }
                    8 => {
                        // Reverse the four 16-bit words of each 64-bit lane.
                        let lo = _mm_shufflelo_epi16(w, 0b00_01_10_11);
                        _mm_shufflehi_epi16(lo, 0b00_01_10_11)
                    }
                    _ => unreachable!("bswap widths are 2, 4, 8"),
                };
                _mm_storeu_si128(dp.add(i).cast(), out);
            }
            i += 16;
        }
        if i < n {
            super::scalar::bswap(width, &src[i..], &mut dst[i..]);
        }
    }

    /// AVX2 sign-extending widen of 4-byte ints to `i64` (with optional
    /// pre-swap), 4 elements per iteration.
    ///
    /// # Safety
    /// Caller must have verified AVX2. Bounds asserted; every element of
    /// `dst` is written.
    #[target_feature(enable = "avx2")]
    pub unsafe fn widen_i32_avx2(src: &[u8], swap: bool, dst: &mut [MaybeUninit<i64>]) {
        assert_eq!(src.len(), dst.len() * 4);
        let n = dst.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr().cast::<i64>();
        let mask128: __m128i = unsafe { _mm_loadu_si128(BSWAP32_MASK.as_ptr().cast()) };
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: (i+4)*4 <= src.len() and i+4 <= dst.len().
            unsafe {
                let mut v = _mm_loadu_si128(sp.add(i * 4).cast());
                if swap {
                    v = _mm_shuffle_epi8(v, mask128);
                }
                _mm256_storeu_si256(dp.add(i).cast(), _mm256_cvtepi32_epi64(v));
            }
            i += 4;
        }
        if i < n {
            super::scalar::decode_i64(&src[i * 4..], 4, swap, &mut dst[i..]);
        }
    }

    /// AVX2 sign-extending widen of 2-byte ints to `i64`, 4 per iteration.
    ///
    /// # Safety
    /// Caller must have verified AVX2. Bounds asserted.
    #[target_feature(enable = "avx2")]
    pub unsafe fn widen_i16_avx2(src: &[u8], swap: bool, dst: &mut [MaybeUninit<i64>]) {
        assert_eq!(src.len(), dst.len() * 2);
        let n = dst.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr().cast::<i64>();
        let mask128: __m128i = unsafe { _mm_loadu_si128(BSWAP16_MASK.as_ptr().cast()) };
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: 8-byte load at src[i*2..i*2+8] is in bounds since
            // (i+4)*2 <= src.len(); store of 4 i64 in bounds likewise.
            unsafe {
                let mut v = _mm_loadl_epi64(sp.add(i * 2).cast());
                if swap {
                    v = _mm_shuffle_epi8(v, mask128);
                }
                _mm256_storeu_si256(dp.add(i).cast(), _mm256_cvtepi16_epi64(v));
            }
            i += 4;
        }
        if i < n {
            super::scalar::decode_i64(&src[i * 2..], 2, swap, &mut dst[i..]);
        }
    }

    /// AVX2 `f32`→`f64` widen (with optional pre-swap), 4 per iteration.
    ///
    /// # Safety
    /// Caller must have verified AVX2. Bounds asserted.
    #[target_feature(enable = "avx2")]
    pub unsafe fn widen_f32_avx2(src: &[u8], swap: bool, dst: &mut [MaybeUninit<f64>]) {
        assert_eq!(src.len(), dst.len() * 4);
        let n = dst.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr().cast::<f64>();
        let mask128: __m128i = unsafe { _mm_loadu_si128(BSWAP32_MASK.as_ptr().cast()) };
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: (i+4)*4 <= src.len(); i+4 <= dst.len().
            unsafe {
                let mut v = _mm_loadu_si128(sp.add(i * 4).cast());
                if swap {
                    v = _mm_shuffle_epi8(v, mask128);
                }
                _mm256_storeu_pd(dp.add(i), _mm256_cvtps_pd(_mm_castsi128_ps(v)));
            }
            i += 4;
        }
        if i < n {
            super::scalar::decode_f64(&src[i * 4..], 4, swap, &mut dst[i..]);
        }
    }

    /// AVX2 `f64`→`f32` narrowing encode (with optional post-swap), 4 per
    /// iteration.
    ///
    /// # Safety
    /// Caller must have verified AVX2. Bounds asserted.
    #[target_feature(enable = "avx2")]
    pub unsafe fn narrow_f64_avx2(src: &[f64], swap: bool, dst: &mut [MaybeUninit<u8>]) {
        assert_eq!(dst.len(), src.len() * 4);
        let n = src.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr().cast::<u8>();
        let mask128: __m128i = unsafe { _mm_loadu_si128(BSWAP32_MASK.as_ptr().cast()) };
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: i+4 <= n bounds the load; (i+4)*4 <= dst.len().
            unsafe {
                let v = _mm256_loadu_pd(sp.add(i));
                let mut f = _mm_castps_si128(_mm256_cvtpd_ps(v));
                if swap {
                    f = _mm_shuffle_epi8(f, mask128);
                }
                _mm_storeu_si128(dp.add(i * 4).cast(), f);
            }
            i += 4;
        }
        if i < n {
            super::scalar::encode_f64(&src[i..], 4, swap, &mut dst[i * 4..]);
        }
    }

    /// AVX2 `i64`→`i32` narrowing encode (truncating, optional swap), 4
    /// per iteration.
    ///
    /// # Safety
    /// Caller must have verified AVX2. Bounds asserted.
    #[target_feature(enable = "avx2")]
    pub unsafe fn narrow_i64_i32_avx2(src: &[i64], swap: bool, dst: &mut [MaybeUninit<u8>]) {
        assert_eq!(dst.len(), src.len() * 4);
        let n = src.len();
        let sp = src.as_ptr();
        let dp = dst.as_mut_ptr().cast::<u8>();
        let mask128: __m128i = unsafe { _mm_loadu_si128(BSWAP32_MASK.as_ptr().cast()) };
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: i+4 <= n bounds the load; (i+4)*4 <= dst.len().
            unsafe {
                let v = _mm256_loadu_si256(sp.add(i).cast());
                // Gather the low dword of each qword into the low half.
                let shuffled = _mm256_shuffle_epi32(v, 0b11_01_10_00);
                let packed = _mm256_permute4x64_epi64(shuffled, 0b11_01_10_00);
                let mut lo = _mm256_castsi256_si128(packed);
                if swap {
                    lo = _mm_shuffle_epi8(lo, mask128);
                }
                _mm_storeu_si128(dp.add(i * 4).cast(), lo);
            }
            i += 4;
        }
        if i < n {
            super::scalar::encode_i64(&src[i..], 4, swap, &mut dst[i * 4..]);
        }
    }

    /// AVX2 escape scan: 32 bytes per `vpcmpeqb`+`vpmovmskb` round.
    ///
    /// # Safety
    /// Caller must have verified AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn escape_scan_avx2(bytes: &[u8], attr: bool) -> usize {
        let n = bytes.len();
        let p = bytes.as_ptr();
        let amp = _mm256_set1_epi8(b'&' as i8);
        let lt = _mm256_set1_epi8(b'<' as i8);
        let gt = _mm256_set1_epi8(b'>' as i8);
        let quot = _mm256_set1_epi8(b'"' as i8);
        let apos = _mm256_set1_epi8(b'\'' as i8);
        let mut i = 0usize;
        while i + 32 <= n {
            // SAFETY: i+32 <= n bounds the load.
            let m = unsafe {
                let v = _mm256_loadu_si256(p.add(i).cast());
                let mut hit = _mm256_or_si256(
                    _mm256_cmpeq_epi8(v, amp),
                    _mm256_or_si256(_mm256_cmpeq_epi8(v, lt), _mm256_cmpeq_epi8(v, gt)),
                );
                if attr {
                    hit = _mm256_or_si256(
                        hit,
                        _mm256_or_si256(_mm256_cmpeq_epi8(v, quot), _mm256_cmpeq_epi8(v, apos)),
                    );
                }
                _mm256_movemask_epi8(hit) as u32
            };
            if m != 0 {
                return i + m.trailing_zeros() as usize;
            }
            i += 32;
        }
        i + super::scalar::escape_scan(&bytes[i..], attr)
    }

    /// SSE2 escape scan, 16 bytes per round.
    ///
    /// # Safety
    /// SSE2 is part of the x86-64 baseline.
    #[target_feature(enable = "sse2")]
    pub unsafe fn escape_scan_sse2(bytes: &[u8], attr: bool) -> usize {
        let n = bytes.len();
        let p = bytes.as_ptr();
        let amp = _mm_set1_epi8(b'&' as i8);
        let lt = _mm_set1_epi8(b'<' as i8);
        let gt = _mm_set1_epi8(b'>' as i8);
        let quot = _mm_set1_epi8(b'"' as i8);
        let apos = _mm_set1_epi8(b'\'' as i8);
        let mut i = 0usize;
        while i + 16 <= n {
            // SAFETY: i+16 <= n bounds the load.
            let m = unsafe {
                let v = _mm_loadu_si128(p.add(i).cast());
                let mut hit = _mm_or_si128(
                    _mm_cmpeq_epi8(v, amp),
                    _mm_or_si128(_mm_cmpeq_epi8(v, lt), _mm_cmpeq_epi8(v, gt)),
                );
                if attr {
                    hit = _mm_or_si128(
                        hit,
                        _mm_or_si128(_mm_cmpeq_epi8(v, quot), _mm_cmpeq_epi8(v, apos)),
                    );
                }
                _mm_movemask_epi8(hit) as u32
            };
            if m != 0 {
                return i + m.trailing_zeros() as usize;
            }
            i += 16;
        }
        i + super::scalar::escape_scan(&bytes[i..], attr)
    }
}

// ---------------------------------------------------------------------------
// Dispatched entry points
// ---------------------------------------------------------------------------

/// Byte-swaps `width`-byte (2/4/8) elements from `src` into `dst`
/// (`src.len() == dst.len()`, a multiple of `width`). Large copies use
/// non-temporal stores on AVX2.
pub fn bswap(width: usize, src: &[u8], dst: &mut [MaybeUninit<u8>]) {
    #[cfg(target_arch = "x86_64")]
    match level() {
        // SAFETY: the latched level proved the feature is available.
        SimdLevel::Avx2 => {
            return unsafe { x86::bswap_avx2(width, src, dst, src.len() >= NT_THRESHOLD) }
        }
        SimdLevel::Sse2 => return unsafe { x86::bswap_sse2(width, src, dst) },
        SimdLevel::Scalar => {}
    }
    scalar::bswap(width, src, dst);
}

/// Decodes `width`-byte (1/2/4/8) sign-extended wire integers into `dst`.
pub fn decode_i64(src: &[u8], width: usize, swap: bool, dst: &mut [MaybeUninit<i64>]) {
    assert_eq!(src.len(), dst.len() * width);
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        match width {
            8 => {
                // Width-8 is a straight copy or a 64-bit swap; reuse the
                // byte-swap kernel over the reinterpreted destination.
                let bytes = cast_uninit_bytes_i64(dst);
                if swap {
                    // SAFETY: level() proved AVX2.
                    unsafe { x86::bswap_avx2(8, src, bytes, src.len() >= NT_THRESHOLD) };
                } else {
                    copy_bytes(src, bytes);
                }
                return;
            }
            // SAFETY: level() proved AVX2.
            4 => return unsafe { x86::widen_i32_avx2(src, swap, dst) },
            2 => return unsafe { x86::widen_i16_avx2(src, swap, dst) },
            _ => {}
        }
    }
    if width == 8 && !swap {
        copy_bytes(src, cast_uninit_bytes_i64(dst));
        return;
    }
    scalar::decode_i64(src, width, swap, dst);
}

/// Decodes `width`-byte (4/8) wire floats into `dst`.
pub fn decode_f64(src: &[u8], width: usize, swap: bool, dst: &mut [MaybeUninit<f64>]) {
    assert_eq!(src.len(), dst.len() * width);
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        match width {
            8 => {
                let bytes = cast_uninit_bytes_f64(dst);
                if swap {
                    // SAFETY: level() proved AVX2.
                    unsafe { x86::bswap_avx2(8, src, bytes, src.len() >= NT_THRESHOLD) };
                } else {
                    copy_bytes(src, bytes);
                }
                return;
            }
            // SAFETY: level() proved AVX2.
            4 => return unsafe { x86::widen_f32_avx2(src, swap, dst) },
            _ => {}
        }
    }
    if width == 8 && !swap {
        copy_bytes(src, cast_uninit_bytes_f64(dst));
        return;
    }
    scalar::decode_f64(src, width, swap, dst);
}

/// Encodes `i64`s as `width`-byte (1/2/4/8) wire integers into `dst`.
pub fn encode_i64(src: &[i64], width: usize, swap: bool, dst: &mut [MaybeUninit<u8>]) {
    assert_eq!(dst.len(), src.len() * width);
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        match width {
            8 => {
                let bytes = cast_i64_bytes(src);
                if swap {
                    // SAFETY: level() proved AVX2.
                    unsafe { x86::bswap_avx2(8, bytes, dst, bytes.len() >= NT_THRESHOLD) };
                } else {
                    copy_bytes(bytes, dst);
                }
                return;
            }
            // SAFETY: level() proved AVX2.
            4 => return unsafe { x86::narrow_i64_i32_avx2(src, swap, dst) },
            _ => {}
        }
    }
    if width == 8 && !swap {
        copy_bytes(cast_i64_bytes(src), dst);
        return;
    }
    scalar::encode_i64(src, width, swap, dst);
}

/// Encodes `f64`s as `width`-byte (4/8) wire floats into `dst`.
pub fn encode_f64(src: &[f64], width: usize, swap: bool, dst: &mut [MaybeUninit<u8>]) {
    assert_eq!(dst.len(), src.len() * width);
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 {
        match width {
            8 => {
                let bytes = cast_f64_bytes(src);
                if swap {
                    // SAFETY: level() proved AVX2.
                    unsafe { x86::bswap_avx2(8, bytes, dst, bytes.len() >= NT_THRESHOLD) };
                } else {
                    copy_bytes(bytes, dst);
                }
                return;
            }
            // SAFETY: level() proved AVX2.
            4 => return unsafe { x86::narrow_f64_avx2(src, swap, dst) },
            _ => {}
        }
    }
    if width == 8 && !swap {
        copy_bytes(cast_f64_bytes(src), dst);
        return;
    }
    scalar::encode_f64(src, width, swap, dst);
}

/// Index of the first byte needing XML escaping (`&`, `<`, `>`, plus `"`
/// and `'` when `attr`), or `bytes.len()` for a clean span.
pub fn escape_scan(bytes: &[u8], attr: bool) -> usize {
    #[cfg(target_arch = "x86_64")]
    match level() {
        // SAFETY: the latched level proved the feature is available.
        SimdLevel::Avx2 => return unsafe { x86::escape_scan_avx2(bytes, attr) },
        SimdLevel::Sse2 => return unsafe { x86::escape_scan_sse2(bytes, attr) },
        SimdLevel::Scalar => {}
    }
    scalar::escape_scan(bytes, attr)
}

// ---------------------------------------------------------------------------
// Reinterpret helpers
// ---------------------------------------------------------------------------

/// `&mut [MaybeUninit<i64>]` viewed as its raw bytes. Sound because
/// `MaybeUninit<u8>` has no validity requirements and the two views cover
/// exactly the same memory.
fn cast_uninit_bytes_i64(dst: &mut [MaybeUninit<i64>]) -> &mut [MaybeUninit<u8>] {
    // SAFETY: same allocation, length scaled by size_of::<i64>(); u8 has
    // alignment 1.
    unsafe { std::slice::from_raw_parts_mut(dst.as_mut_ptr().cast(), dst.len() * 8) }
}

/// `&mut [MaybeUninit<f64>]` viewed as its raw bytes.
fn cast_uninit_bytes_f64(dst: &mut [MaybeUninit<f64>]) -> &mut [MaybeUninit<u8>] {
    // SAFETY: as above.
    unsafe { std::slice::from_raw_parts_mut(dst.as_mut_ptr().cast(), dst.len() * 8) }
}

/// `&[i64]` viewed as initialized bytes.
fn cast_i64_bytes(src: &[i64]) -> &[u8] {
    // SAFETY: i64 has no padding; every byte is initialized.
    unsafe { std::slice::from_raw_parts(src.as_ptr().cast(), src.len() * 8) }
}

/// `&[f64]` viewed as initialized bytes.
fn cast_f64_bytes(src: &[f64]) -> &[u8] {
    // SAFETY: f64 has no padding; every byte is initialized.
    unsafe { std::slice::from_raw_parts(src.as_ptr().cast(), src.len() * 8) }
}

fn copy_bytes(src: &[u8], dst: &mut [MaybeUninit<u8>]) {
    assert_eq!(src.len(), dst.len());
    // SAFETY: disjoint (dst is exclusive), equal lengths, u8 is Copy.
    unsafe {
        std::ptr::copy_nonoverlapping(src.as_ptr(), dst.as_mut_ptr().cast(), src.len());
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SmallRng;

    /// Lengths chosen to straddle every vector width boundary (0, 1,
    /// 15/16/17 around SSE, 4095/4097 around page-ish bulk sizes).
    const LENS: &[usize] = &[
        0, 1, 2, 3, 4, 7, 8, 15, 16, 17, 31, 32, 33, 255, 4095, 4096, 4097,
    ];

    fn filled<T: Copy>(n: usize, f: impl FnMut(usize) -> T) -> Vec<T> {
        (0..n).map(f).collect()
    }

    /// Runs a kernel into fresh uninit capacity and returns the result.
    fn run_i64(
        src: &[u8],
        width: usize,
        swap: bool,
        k: impl Fn(&[u8], usize, bool, &mut [MaybeUninit<i64>]),
    ) -> Vec<i64> {
        let n = src.len() / width;
        let mut v: Vec<i64> = Vec::with_capacity(n);
        k(src, width, swap, &mut v.spare_capacity_mut()[..n]);
        // SAFETY: the kernel contract fills every element.
        unsafe { v.set_len(n) };
        v
    }

    fn run_f64(
        src: &[u8],
        width: usize,
        swap: bool,
        k: impl Fn(&[u8], usize, bool, &mut [MaybeUninit<f64>]),
    ) -> Vec<f64> {
        let n = src.len() / width;
        let mut v: Vec<f64> = Vec::with_capacity(n);
        k(src, width, swap, &mut v.spare_capacity_mut()[..n]);
        // SAFETY: the kernel contract fills every element.
        unsafe { v.set_len(n) };
        v
    }

    fn run_bytes<T>(
        src: &[T],
        width: usize,
        swap: bool,
        k: impl Fn(&[T], usize, bool, &mut [MaybeUninit<u8>]),
    ) -> Vec<u8> {
        let n = src.len() * width;
        let mut v: Vec<u8> = Vec::with_capacity(n);
        k(src, width, swap, &mut v.spare_capacity_mut()[..n]);
        // SAFETY: the kernel contract fills every element.
        unsafe { v.set_len(n) };
        v
    }

    #[test]
    fn level_latches_and_names_are_stable() {
        let l = level();
        assert_eq!(level(), l, "latched");
        assert!(["scalar", "sse2", "avx2"].contains(&l.name()));
        assert!(detected_level() >= SimdLevel::Scalar);
    }

    #[test]
    fn no_simd_override_selects_scalar() {
        assert_eq!(select_level(SimdLevel::Avx2, None), SimdLevel::Avx2);
        assert_eq!(select_level(SimdLevel::Avx2, Some("")), SimdLevel::Avx2);
        assert_eq!(select_level(SimdLevel::Avx2, Some("0")), SimdLevel::Avx2);
        assert_eq!(select_level(SimdLevel::Avx2, Some("1")), SimdLevel::Scalar);
        assert_eq!(
            select_level(SimdLevel::Sse2, Some("yes")),
            SimdLevel::Scalar
        );
    }

    #[test]
    fn bswap_parity_across_widths_lengths_and_misalignment() {
        let mut rng = SmallRng::seed_from_u64(0x51_0d_ba_11);
        for &width in &[2usize, 4, 8] {
            for &len in LENS {
                let n = len * width;
                // Misaligned view into a larger buffer: offsets 0..=31.
                for off in [0usize, 1, 3, 8, 17, 31] {
                    let backing = filled(n + off, |_| rng.gen_below(256) as u8);
                    let src = &backing[off..];
                    let simd = run_bytes(src, 1, false, |s, _, _, d| bswap(width, s, d));
                    let reference =
                        run_bytes(src, 1, false, |s, _, _, d| scalar::bswap(width, s, d));
                    assert_eq!(simd, reference, "width={width} len={len} off={off}");
                }
            }
        }
    }

    #[test]
    fn decode_i64_parity_and_sign_extension() {
        let mut rng = SmallRng::seed_from_u64(0xdec0de);
        for &width in &[1usize, 2, 4, 8] {
            for swap in [false, true] {
                for &len in LENS {
                    let src: Vec<u8> = filled(len * width, |_| rng.gen_below(256) as u8);
                    let simd = run_i64(&src, width, swap, decode_i64);
                    let reference = run_i64(&src, width, swap, scalar::decode_i64);
                    assert_eq!(simd, reference, "width={width} swap={swap} len={len}");
                }
            }
        }
        // Sign extension pins the semantics, not just self-consistency.
        let neg = run_i64(&[0xFF, 0xFE], 2, false, decode_i64);
        assert_eq!(neg, vec![i16::from_le_bytes([0xFF, 0xFE]) as i64]);
        let neg = run_i64(&[0xFF, 0xFE], 2, true, decode_i64);
        assert_eq!(neg, vec![i16::from_be_bytes([0xFF, 0xFE]) as i64]);
    }

    #[test]
    fn decode_f64_parity_bitwise() {
        let mut rng = SmallRng::seed_from_u64(0xf10a7);
        for &width in &[4usize, 8] {
            for swap in [false, true] {
                for &len in LENS {
                    let src: Vec<u8> = filled(len * width, |_| rng.gen_below(256) as u8);
                    let simd = run_f64(&src, width, swap, decode_f64);
                    let reference = run_f64(&src, width, swap, scalar::decode_f64);
                    // Bit-exact, including NaN payloads from random bytes.
                    let a: Vec<u64> = simd.iter().map(|x| x.to_bits()).collect();
                    let b: Vec<u64> = reference.iter().map(|x| x.to_bits()).collect();
                    assert_eq!(a, b, "width={width} swap={swap} len={len}");
                }
            }
        }
    }

    #[test]
    fn encode_parity_and_round_trip() {
        let mut rng = SmallRng::seed_from_u64(0xe2c0de);
        for &width in &[1usize, 2, 4, 8] {
            for swap in [false, true] {
                for &len in LENS {
                    let vals: Vec<i64> = filled(len, |_| rng.next_u64() as i64);
                    let simd = run_bytes(&vals, width, swap, encode_i64);
                    let reference = run_bytes(&vals, width, swap, scalar::encode_i64);
                    assert_eq!(simd, reference, "int width={width} swap={swap} len={len}");
                }
            }
        }
        for &width in &[4usize, 8] {
            for swap in [false, true] {
                for &len in LENS {
                    let vals: Vec<f64> =
                        filled(len, |i| (rng.gen_f64() - 0.5) * (i as f64 + 1.0) * 1e3);
                    let simd = run_bytes(&vals, width, swap, encode_f64);
                    let reference = run_bytes(&vals, width, swap, scalar::encode_f64);
                    assert_eq!(simd, reference, "float width={width} swap={swap} len={len}");
                    // Decode inverts encode (within the width's precision).
                    let back = run_f64(&simd, width, swap, decode_f64);
                    let expect: Vec<f64> = if width == 8 {
                        vals.clone()
                    } else {
                        vals.iter().map(|x| *x as f32 as f64).collect()
                    };
                    assert_eq!(back, expect, "round trip width={width} swap={swap}");
                }
            }
        }
    }

    #[test]
    fn escape_scan_parity_and_positions() {
        let mut rng = SmallRng::seed_from_u64(0xe5ca9e);
        for attr in [false, true] {
            for &len in LENS {
                // Mostly-clean text with occasional specials.
                let bytes: Vec<u8> = filled(len, |_| {
                    if rng.gen_below(13) == 0 {
                        [b'&', b'<', b'>', b'"', b'\''][rng.gen_below(5) as usize]
                    } else {
                        b'a' + (rng.gen_below(26) as u8)
                    }
                });
                assert_eq!(
                    escape_scan(&bytes, attr),
                    scalar::escape_scan(&bytes, attr),
                    "attr={attr} len={len}"
                );
            }
        }
        assert_eq!(escape_scan(b"plain text with no markup", false), 25);
        assert_eq!(escape_scan(b"abc&def", false), 3);
        assert_eq!(escape_scan(b"abc\"def", false), 7, "quote clean in text");
        assert_eq!(escape_scan(b"abc\"def", true), 3, "quote dirty in attr");
        // A hit in the scalar tail after clean vector blocks.
        let mut long = vec![b'x'; 100];
        long.push(b'<');
        assert_eq!(escape_scan(&long, false), 100);
    }

    /// Explicit-tier parity: when the hardware has AVX2/SSE2, pin those
    /// kernels directly against scalar (not just whatever `level()`
    /// picked). Skipped under Miri, which interprets portably.
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[test]
    fn explicit_tiers_match_scalar() {
        let mut rng = SmallRng::seed_from_u64(0x7157);
        let src: Vec<u8> = filled(4096 + 17, |_| rng.gen_below(256) as u8);
        for &width in &[2usize, 4, 8] {
            let n = src.len() - (src.len() % width);
            let reference = run_bytes(&src[..n], 1, false, |s, _, _, d| scalar::bswap(width, s, d));
            // SAFETY: feature checked before call.
            if std::arch::is_x86_feature_detected!("avx2") {
                for stream in [false, true] {
                    let got = run_bytes(&src[..n], 1, false, |s, _, _, d| unsafe {
                        x86::bswap_avx2(width, s, d, stream)
                    });
                    assert_eq!(got, reference, "avx2 width={width} stream={stream}");
                }
            }
            let got = run_bytes(&src[..n], 1, false, |s, _, _, d| unsafe {
                x86::bswap_sse2(width, s, d)
            });
            assert_eq!(got, reference, "sse2 width={width}");
        }
    }
}
