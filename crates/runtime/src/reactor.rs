//! Readiness-driven I/O core: an epoll-backed [`Reactor`], a hashed
//! [`DeadlineWheel`] for connection timeouts, and a wake pipe for
//! cross-thread unpark — the three primitives an event-driven server
//! needs to hold thousands of idle keep-alive connections on one thread.
//!
//! Zero dependencies: the epoll/pipe calls go through a tiny `extern "C"`
//! shim (the symbols come from the libc that `std` already links), and
//! everything else is `std::os::fd` + `std::net`. Registration is
//! level-triggered — simpler to reason about than edge-triggered, and the
//! callers here always drain sockets until `WouldBlock` anyway.
//!
//! Ownership model: the reactor never owns a file descriptor it did not
//! create. Callers keep their `TcpStream`/`TcpListener`, register the
//! borrowed fd under a [`Token`], and must [`Reactor::deregister`] before
//! closing it (a stale registration on a reused fd number is the classic
//! epoll bug; the [`Token`] generation scheme used by `sbq-http` guards
//! the other half of that race).

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::time::{Duration, Instant};

/// FFI shim over the handful of syscall wrappers the reactor needs. The
/// symbols resolve from the platform libc that `std` links; no external
/// crate is involved.
mod sys {
    use std::os::raw::{c_int, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const O_NONBLOCK: c_int = 0o4000;
    pub const O_CLOEXEC: c_int = 0o2000000;

    pub const RLIMIT_NOFILE: c_int = 7;

    /// Matches the kernel's `struct epoll_event`; packed on x86, where
    /// the kernel ABI has no padding between `events` and `data`.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[repr(C)]
    pub struct RLimit {
        pub cur: u64,
        pub max: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout_ms: c_int,
        ) -> c_int;
        pub fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }
}

/// Caller-chosen key identifying a registration; delivered back on every
/// event for that fd. The value `u64::MAX` is reserved for the reactor's
/// internal wake pipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub u64);

/// Reserved internal token for the wake pipe.
const WAKE_DATA: u64 = u64::MAX;

/// Which readiness a registration asks for. Construct from the
/// associated constants and combine with [`Interest::and`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    readable: bool,
    writable: bool,
}

impl Interest {
    /// No readiness: only error/hang-up events are delivered (epoll
    /// reports those unconditionally).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
    /// Read readiness.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write readiness.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };

    /// Union of two interests.
    pub fn and(self, other: Interest) -> Interest {
        Interest {
            readable: self.readable || other.readable,
            writable: self.writable || other.writable,
        }
    }

    /// Whether read readiness is requested.
    pub fn is_readable(&self) -> bool {
        self.readable
    }

    /// Whether write readiness is requested.
    pub fn is_writable(&self) -> bool {
        self.writable
    }

    fn bits(&self) -> u32 {
        // EPOLLRDHUP is always requested so a half-closed peer surfaces
        // as an event even when the caller is between read interests.
        let mut bits = sys::EPOLLRDHUP;
        if self.readable {
            bits |= sys::EPOLLIN;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

/// One readiness event, translated out of the epoll bit soup.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The registration's token.
    pub token: Token,
    /// Read readiness (data, or EOF, is available).
    pub readable: bool,
    /// Write readiness.
    pub writable: bool,
    /// Peer shut down its write side (`EPOLLRDHUP`): reads will drain
    /// to EOF, but the connection may still accept our writes.
    pub rdhup: bool,
    /// Hard error or full hang-up (`EPOLLERR`/`EPOLLHUP`): the
    /// connection is unusable.
    pub error: bool,
}

/// What a [`Reactor::poll`] call observed besides the events it pushed.
#[derive(Debug, Clone, Copy, Default)]
pub struct PollSummary {
    /// Readiness events delivered into the caller's buffer.
    pub events: usize,
    /// Another thread called [`Reactor::wake`] since the last poll.
    pub woken: bool,
    /// The poll returned because the timeout elapsed.
    pub timed_out: bool,
}

/// An epoll instance plus a wake pipe. `poll` is meant to be called from
/// one event-loop thread; `wake` may be called from any thread to
/// unblock it (job completions, shutdown).
pub struct Reactor {
    epfd: RawFd,
    wake_rd: RawFd,
    wake_wr: RawFd,
}

// Raw fds are plain integers; the kernel synchronizes epoll_ctl/wait.
unsafe impl Send for Reactor {}
unsafe impl Sync for Reactor {}

impl Reactor {
    /// Creates the epoll instance and its wake pipe (both close-on-exec;
    /// the pipe is non-blocking so `wake` never stalls).
    pub fn new() -> io::Result<Reactor> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        let mut fds = [0i32; 2];
        if unsafe { sys::pipe2(fds.as_mut_ptr(), sys::O_NONBLOCK | sys::O_CLOEXEC) } < 0 {
            let e = io::Error::last_os_error();
            unsafe { sys::close(epfd) };
            return Err(e);
        }
        let reactor = Reactor {
            epfd,
            wake_rd: fds[0],
            wake_wr: fds[1],
        };
        let mut ev = sys::EpollEvent {
            events: sys::EPOLLIN,
            data: WAKE_DATA,
        };
        if unsafe { sys::epoll_ctl(reactor.epfd, sys::EPOLL_CTL_ADD, reactor.wake_rd, &mut ev) } < 0
        {
            return Err(io::Error::last_os_error());
        }
        Ok(reactor)
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent { events, data };
        let ptr = if op == sys::EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut sys::EpollEvent
        };
        if unsafe { sys::epoll_ctl(self.epfd, op, fd, ptr) } < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Registers `fd` (which should already be non-blocking) under
    /// `token` with the given interest, level-triggered.
    pub fn register(&self, fd: &impl AsRawFd, token: Token, interest: Interest) -> io::Result<()> {
        if token.0 == WAKE_DATA {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "token u64::MAX is reserved for the reactor wake pipe",
            ));
        }
        self.ctl(sys::EPOLL_CTL_ADD, fd.as_raw_fd(), interest.bits(), token.0)
    }

    /// Changes an existing registration's token and/or interest.
    pub fn reregister(
        &self,
        fd: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        if token.0 == WAKE_DATA {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "token u64::MAX is reserved for the reactor wake pipe",
            ));
        }
        self.ctl(sys::EPOLL_CTL_MOD, fd.as_raw_fd(), interest.bits(), token.0)
    }

    /// Removes a registration. Must be called before the fd is closed,
    /// or a later fd reuse inherits the stale registration.
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd.as_raw_fd(), 0, 0)
    }

    /// Unblocks a concurrent (or the next) [`Reactor::poll`]. Callable
    /// from any thread; never blocks (a full wake pipe already means a
    /// wake is pending).
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe { sys::write(self.wake_wr, &byte as *const u8 as *const _, 1) };
    }

    /// Waits up to `timeout` (`None` blocks indefinitely) for readiness,
    /// clearing and refilling `events`. Wake-pipe events are consumed
    /// internally and reported via [`PollSummary::woken`], not as
    /// events. `EINTR` returns an empty, non-timed-out summary so the
    /// caller's loop just re-polls.
    pub fn poll(
        &self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<PollSummary> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                let mut ms = d.as_millis();
                if d.subsec_nanos() % 1_000_000 != 0 {
                    ms += 1; // round up: never spin on a sub-millisecond deadline
                }
                ms.min(i32::MAX as u128) as i32
            }
        };
        let mut raw = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let n =
            unsafe { sys::epoll_wait(self.epfd, raw.as_mut_ptr(), raw.len() as i32, timeout_ms) };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(PollSummary::default());
            }
            return Err(e);
        }
        let mut summary = PollSummary {
            events: 0,
            woken: false,
            timed_out: n == 0,
        };
        for ev in &raw[..n as usize] {
            let (bits, data) = (ev.events, ev.data);
            if data == WAKE_DATA {
                summary.woken = true;
                self.drain_wake_pipe();
                continue;
            }
            events.push(Event {
                token: Token(data),
                readable: bits & sys::EPOLLIN != 0,
                writable: bits & sys::EPOLLOUT != 0,
                rdhup: bits & sys::EPOLLRDHUP != 0,
                error: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        summary.events = events.len();
        Ok(summary)
    }

    fn drain_wake_pipe(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { sys::read(self.wake_rd, buf.as_mut_ptr() as *mut _, buf.len()) };
            if n < buf.len() as isize {
                break; // drained (or EAGAIN / short read)
            }
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.wake_rd);
            sys::close(self.wake_wr);
            sys::close(self.epfd);
        }
    }
}

/// Raises the process's soft `RLIMIT_NOFILE` toward `want` (bounded by
/// the hard limit) and returns the resulting soft limit. Benchmarks that
/// open ten thousand sockets call this first; failures are non-fatal and
/// simply return the current limit.
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut lim = sys::RLimit { cur: 0, max: 0 };
    if unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) } != 0 {
        return 0;
    }
    if lim.cur >= want {
        return lim.cur;
    }
    let new = sys::RLimit {
        cur: want.min(lim.max),
        max: lim.max,
    };
    if unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &new) } == 0 {
        new.cur
    } else {
        lim.cur
    }
}

// ---------------------------------------------------------------------------
// Deadline wheel
// ---------------------------------------------------------------------------

/// A hashed timer wheel for coarse connection deadlines (read, write,
/// keep-alive idle). Entries are `(token, generation)` pairs;
/// cancellation is lazy — the owner bumps its generation counter and
/// simply ignores expirations whose generation is stale. That makes
/// `arm` O(1) with no removal bookkeeping, the right trade for
/// deadlines that are nearly always superseded before they fire.
pub struct DeadlineWheel {
    tick: Duration,
    slots: Vec<Vec<WheelEntry>>,
    base: Instant,
    /// Ticks fully processed so far.
    cursor: u64,
    len: usize,
}

#[derive(Clone, Copy)]
struct WheelEntry {
    token: Token,
    gen: u64,
    at_tick: u64,
}

impl DeadlineWheel {
    /// A wheel with the given tick resolution and slot count. A deadline
    /// further out than `tick * slots` wraps and is re-examined next
    /// round — correct, just one extra scan per round.
    pub fn new(tick: Duration, slots: usize) -> DeadlineWheel {
        DeadlineWheel {
            tick: tick.max(Duration::from_millis(1)),
            slots: vec![Vec::new(); slots.max(2)],
            base: Instant::now(),
            cursor: 0,
            len: 0,
        }
    }

    fn tick_of(&self, deadline: Instant) -> u64 {
        let dt = deadline.saturating_duration_since(self.base);
        let tick_ns = self.tick.as_nanos().max(1);
        let t = dt.as_nanos().div_ceil(tick_ns);
        (t.min(u64::MAX as u128) as u64).max(self.cursor + 1)
    }

    /// Schedules `(token, gen)` to expire at `deadline` (rounded up to
    /// the next tick; a past deadline fires on the very next tick).
    pub fn arm(&mut self, token: Token, gen: u64, deadline: Instant) {
        let at_tick = self.tick_of(deadline);
        let slot = (at_tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(WheelEntry {
            token,
            gen,
            at_tick,
        });
        self.len += 1;
    }

    /// Advances the wheel to `now`, appending every expired
    /// `(token, generation)` to `out`. Stale generations are the
    /// caller's problem by design.
    pub fn expire_into(&mut self, now: Instant, out: &mut Vec<(Token, u64)>) {
        let target = {
            let dt = now.saturating_duration_since(self.base);
            (dt.as_nanos() / self.tick.as_nanos().max(1)).min(u64::MAX as u128) as u64
        };
        if self.len == 0 {
            self.cursor = self.cursor.max(target);
            return;
        }
        while self.cursor < target {
            self.cursor += 1;
            let slot = (self.cursor % self.slots.len() as u64) as usize;
            let cursor = self.cursor;
            let before = self.slots[slot].len();
            self.slots[slot].retain(|e| {
                if e.at_tick <= cursor {
                    out.push((e.token, e.gen));
                    false
                } else {
                    true // a later round's entry; keep it
                }
            });
            self.len -= before - self.slots[slot].len();
            if self.len == 0 {
                self.cursor = target;
                return;
            }
        }
    }

    /// Time until the next slot that holds any entry, or `None` when the
    /// wheel is empty. May be early for entries scheduled rounds ahead —
    /// the resulting poll wakeup expires nothing and re-sleeps, which is
    /// bounded to once per round per far entry.
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        let n = self.slots.len() as u64;
        for d in 1..=n {
            let slot = ((self.cursor + d) % n) as usize;
            if !self.slots[slot].is_empty() {
                let at = self.base + self.tick * (self.cursor + d) as u32;
                return Some(at.saturating_duration_since(now));
            }
        }
        None
    }

    /// Entries currently scheduled (including lazily-cancelled ones).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn wake_unblocks_poll_and_is_not_an_event() {
        let reactor = std::sync::Arc::new(Reactor::new().unwrap());
        let r2 = std::sync::Arc::clone(&reactor);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            r2.wake();
        });
        let mut events = Vec::new();
        let summary = reactor
            .poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        t.join().unwrap();
        assert!(summary.woken);
        assert_eq!(summary.events, 0);
        assert!(events.is_empty());
        // Drained: the next poll times out instead of re-reporting the wake.
        let summary = reactor
            .poll(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(!summary.woken);
        assert!(summary.timed_out);
    }

    #[test]
    fn readiness_round_trip_over_loopback() {
        let reactor = Reactor::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        reactor
            .register(&server, Token(7), Interest::READABLE)
            .unwrap();

        // Nothing to read yet.
        let mut events = Vec::new();
        let s = reactor
            .poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(s.timed_out, "no data: poll must time out");

        client.write_all(b"ping").unwrap();
        let s = reactor
            .poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(s.events, 1);
        assert_eq!(events[0].token, Token(7));
        assert!(events[0].readable);

        // Level-triggered: unread data re-reports.
        let s = reactor
            .poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(s.events, 1, "level-triggered readiness re-reports");

        let mut buf = [0u8; 16];
        let n = (&server).read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        // Switch to write interest: loopback sockets are writable at once.
        reactor
            .reregister(&server, Token(8), Interest::WRITABLE)
            .unwrap();
        let s = reactor
            .poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(s.events, 1);
        assert_eq!(events[0].token, Token(8));
        assert!(events[0].writable);

        // Peer close surfaces as rdhup on a read-interest registration.
        reactor
            .reregister(&server, Token(9), Interest::READABLE)
            .unwrap();
        drop(client);
        let s = reactor
            .poll(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(s.events, 1);
        assert!(events[0].rdhup || events[0].readable);

        reactor.deregister(&server).unwrap();
        let s = reactor
            .poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(s.timed_out, "deregistered fd reports nothing");
    }

    #[test]
    fn reserved_wake_token_is_rejected() {
        let reactor = Reactor::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        assert!(reactor
            .register(&listener, Token(u64::MAX), Interest::READABLE)
            .is_err());
    }

    #[test]
    fn wheel_expires_in_order_with_lazy_cancellation() {
        let mut wheel = DeadlineWheel::new(Duration::from_millis(1), 16);
        let now = Instant::now();
        wheel.arm(Token(1), 10, now + Duration::from_millis(5));
        wheel.arm(Token(2), 20, now + Duration::from_millis(12));
        // "Cancel" token 1 by arming a superseding generation.
        wheel.arm(Token(1), 11, now + Duration::from_millis(5));
        assert_eq!(wheel.len(), 3);

        let mut fired = Vec::new();
        wheel.expire_into(now + Duration::from_millis(7), &mut fired);
        assert_eq!(fired, vec![(Token(1), 10), (Token(1), 11)]);
        fired.clear();
        wheel.expire_into(now + Duration::from_millis(30), &mut fired);
        assert_eq!(fired, vec![(Token(2), 20)]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn wheel_wraps_far_deadlines_across_rounds() {
        // 8 slots x 1 ms: a 25 ms deadline is three rounds out.
        let mut wheel = DeadlineWheel::new(Duration::from_millis(1), 8);
        let now = Instant::now();
        wheel.arm(Token(3), 1, now + Duration::from_millis(25));
        let mut fired = Vec::new();
        wheel.expire_into(now + Duration::from_millis(20), &mut fired);
        assert!(fired.is_empty(), "must not fire a wrapped deadline early");
        wheel.expire_into(now + Duration::from_millis(26), &mut fired);
        assert_eq!(fired, vec![(Token(3), 1)]);
    }

    #[test]
    fn wheel_next_timeout_tracks_soonest_slot() {
        let mut wheel = DeadlineWheel::new(Duration::from_millis(10), 64);
        let now = Instant::now();
        assert!(wheel.next_timeout(now).is_none());
        wheel.arm(Token(1), 1, now + Duration::from_millis(200));
        let t = wheel.next_timeout(now).expect("armed wheel has a timeout");
        assert!(t <= Duration::from_millis(220), "{t:?}");
        assert!(t >= Duration::from_millis(150), "{t:?}");
    }

    #[test]
    fn nofile_limit_raise_is_monotonic() {
        let before = raise_nofile_limit(0);
        let after = raise_nofile_limit(before.saturating_add(1));
        assert!(after >= before);
    }
}
