//! `parking_lot`-style locks over `std::sync`.
//!
//! The guards deliberately have the same call-site shape as
//! `parking_lot`: `lock()`, `read()` and `write()` return guards
//! directly. Poisoning is collapsed into panic propagation — if a thread
//! panicked while holding the lock, the next locker panics too (instead
//! of every call site carrying an `unwrap`), which is exactly the
//! behavior the workspace relied on before.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard(g),
            Err(poisoned) => panic!("lock poisoned by a panicking holder: {poisoned}"),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok().map(MutexGuard)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A readers-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(poisoned) => panic!("rwlock poisoned by a panicking holder: {poisoned}"),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(poisoned) => panic!("rwlock poisoned by a panicking holder: {poisoned}"),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Arc::new(Mutex::new(0u64));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
