//! Size-classed buffer pool for message bodies.
//!
//! Steady-state RPC traffic allocates the same handful of buffer shapes
//! over and over: a request body, a response body, and the scratch the
//! transport reads them into. [`BufferPool`] keeps those `Vec<u8>`s on a
//! sharded free list so a warmed-up call loop performs zero body
//! allocations — the allocator is only touched while the pool is cold or
//! when a message outgrows every cached class.
//!
//! Design:
//!
//! * **Size classes** are powers of two from 4 KiB to 64 MiB. `get(n)`
//!   rounds the hint *up* to the smallest class, `put` files a buffer
//!   under the largest class its capacity covers, so any buffer handed
//!   out for a class is guaranteed to satisfy requests of that class.
//! * **Shards** spread lock traffic: each thread is pinned to a shard by
//!   a thread-local ticket. `get` tries its own shard first and then
//!   steals from the others, so producer/consumer threads (an HTTP worker
//!   recycling a body the client thread will reuse) still hit.
//! * **Caps** bound held memory per shard per class; `put` beyond the cap
//!   drops the buffer (counted, never blocks).
//! * **Stats + observer**: hit/miss/recycle/drop counters and a
//!   `held_bytes` high-water accounting are kept in atomics; an optional
//!   [`PoolObserver`] mirrors them into an external metrics registry
//!   (`pool.buffers.{hit,miss,held_bytes}` in sbq-telemetry).

use crate::sync::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Smallest pooled capacity (class 0).
const MIN_CLASS_BYTES: usize = 4 * 1024;
/// Number of power-of-two classes: 4 KiB, 8 KiB, …, 64 MiB.
const NUM_CLASSES: usize = 15;
/// Lock shards; threads are assigned round-robin.
const NUM_SHARDS: usize = 8;
/// Default per-shard, per-class retained-buffer cap.
const DEFAULT_PER_CLASS_CAP: usize = 8;

/// Byte capacity of size class `c`.
fn class_bytes(c: usize) -> usize {
    MIN_CLASS_BYTES << c
}

/// Smallest class whose capacity covers `n`, or `None` if `n` exceeds the
/// largest class.
fn class_for_get(n: usize) -> Option<usize> {
    (0..NUM_CLASSES).find(|&c| class_bytes(c) >= n)
}

/// Largest class fully covered by a capacity of `n`, or `None` if the
/// buffer is too small to pool.
fn class_for_put(n: usize) -> Option<usize> {
    (0..NUM_CLASSES).rev().find(|&c| class_bytes(c) <= n)
}

/// Sink for pool events, used to bridge into a metrics registry.
pub trait PoolObserver: Send + Sync {
    /// `get` satisfied from the free list.
    fn on_hit(&self);
    /// `get` fell through to the allocator.
    fn on_miss(&self);
    /// Bytes retained by the pool changed by `delta`.
    fn on_held_bytes(&self, delta: i64);
}

/// Snapshot of pool counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// `get` calls served from the free list.
    pub hits: u64,
    /// `get` calls that had to allocate.
    pub misses: u64,
    /// Buffers accepted back by `put`.
    pub recycled: u64,
    /// Buffers `put` dropped because the class was at cap (or unpoolable).
    pub dropped: u64,
    /// Bytes currently retained on free lists.
    pub held_bytes: u64,
    /// High-water mark of `held_bytes`.
    pub peak_held_bytes: u64,
}

#[derive(Default)]
struct Shard {
    classes: [Vec<Vec<u8>>; NUM_CLASSES],
}

struct Inner {
    shards: Vec<Mutex<Shard>>,
    per_class_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    dropped: AtomicU64,
    held_bytes: AtomicU64,
    peak_held_bytes: AtomicU64,
    observer: OnceLock<Arc<dyn PoolObserver>>,
}

/// Sharded free list of size-classed `Vec<u8>` buffers.
///
/// Cloning is cheap (`Arc`); all clones share one pool.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<Inner>,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("BufferPool")
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("held_bytes", &s.held_bytes)
            .finish()
    }
}

fn thread_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % NUM_SHARDS;
    }
    SHARD.with(|s| *s)
}

impl BufferPool {
    /// Pool with the default per-shard class cap.
    pub fn new() -> BufferPool {
        Self::with_cap(DEFAULT_PER_CLASS_CAP)
    }

    /// Pool retaining at most `per_class_cap` buffers per shard per class.
    pub fn with_cap(per_class_cap: usize) -> BufferPool {
        BufferPool {
            inner: Arc::new(Inner {
                shards: (0..NUM_SHARDS)
                    .map(|_| Mutex::new(Shard::default()))
                    .collect(),
                per_class_cap,
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                recycled: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
                held_bytes: AtomicU64::new(0),
                peak_held_bytes: AtomicU64::new(0),
                observer: OnceLock::new(),
            }),
        }
    }

    /// The process-wide shared pool, used by default transport configs.
    pub fn global() -> &'static BufferPool {
        static GLOBAL: OnceLock<BufferPool> = OnceLock::new();
        GLOBAL.get_or_init(BufferPool::new)
    }

    /// Attach a metrics observer. First caller wins; later calls are
    /// ignored so a shared (e.g. global) pool reports to one registry.
    pub fn set_observer(&self, obs: Arc<dyn PoolObserver>) {
        let _ = self.inner.observer.set(obs);
    }

    /// An empty buffer with capacity ≥ `min_capacity`, reused from the
    /// free list when possible.
    pub fn get(&self, min_capacity: usize) -> Vec<u8> {
        let Some(class) = class_for_get(min_capacity) else {
            // Larger than the biggest class: always a fresh allocation.
            self.note_miss();
            return Vec::with_capacity(min_capacity);
        };
        let home = thread_shard();
        for i in 0..NUM_SHARDS {
            let shard = &self.inner.shards[(home + i) % NUM_SHARDS];
            if let Some(mut buf) = shard.lock().classes[class].pop() {
                self.note_held(-(buf.capacity() as i64));
                self.note_hit();
                buf.clear();
                return buf;
            }
        }
        self.note_miss();
        Vec::with_capacity(class_bytes(class))
    }

    /// Return a buffer to the free list. Contents are discarded; buffers
    /// too small to pool or beyond the class cap are dropped.
    pub fn put(&self, buf: Vec<u8>) {
        let Some(class) = class_for_put(buf.capacity()) else {
            if buf.capacity() > 0 {
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            }
            return;
        };
        let held = buf.capacity() as i64;
        let shard = &self.inner.shards[thread_shard()];
        {
            let mut guard = shard.lock();
            let list = &mut guard.classes[class];
            if list.len() >= self.inner.per_class_cap {
                drop(guard);
                self.inner.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            list.push(buf);
        }
        self.inner.recycled.fetch_add(1, Ordering::Relaxed);
        self.note_held(held);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        let i = &self.inner;
        PoolStats {
            hits: i.hits.load(Ordering::Relaxed),
            misses: i.misses.load(Ordering::Relaxed),
            recycled: i.recycled.load(Ordering::Relaxed),
            dropped: i.dropped.load(Ordering::Relaxed),
            held_bytes: i.held_bytes.load(Ordering::Relaxed),
            peak_held_bytes: i.peak_held_bytes.load(Ordering::Relaxed),
        }
    }

    fn note_hit(&self) {
        self.inner.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.inner.observer.get() {
            o.on_hit();
        }
    }

    fn note_miss(&self) {
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.inner.observer.get() {
            o.on_miss();
        }
    }

    fn note_held(&self, delta: i64) {
        let held = if delta >= 0 {
            self.inner
                .held_bytes
                .fetch_add(delta as u64, Ordering::Relaxed)
                + delta as u64
        } else {
            self.inner
                .held_bytes
                .fetch_sub((-delta) as u64, Ordering::Relaxed)
                .saturating_sub((-delta) as u64)
        };
        self.inner
            .peak_held_bytes
            .fetch_max(held, Ordering::Relaxed);
        if let Some(o) = self.inner.observer.get() {
            o.on_held_bytes(delta);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_round_trip_hits() {
        let pool = BufferPool::new();
        let buf = pool.get(1000);
        assert!(buf.capacity() >= 1000);
        assert_eq!(pool.stats().misses, 1);
        pool.put(buf);
        assert_eq!(pool.stats().recycled, 1);
        let again = pool.get(1000);
        assert!(again.capacity() >= 1000);
        assert!(again.is_empty(), "reused buffers come back cleared");
        let s = pool.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn class_rounding_guarantees_capacity() {
        let pool = BufferPool::new();
        // A put buffer with an odd capacity lands in the class it fully
        // covers, so a get for that class size must fit.
        let mut odd = Vec::with_capacity(10_000); // covers the 8 KiB class
        odd.extend_from_slice(b"junk");
        pool.put(odd);
        let got = pool.get(8 * 1024);
        assert!(got.capacity() >= 8 * 1024);
        assert!(got.is_empty());
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn tiny_and_giant_buffers_bypass_the_pool() {
        let pool = BufferPool::new();
        pool.put(Vec::with_capacity(16)); // below the smallest class
        assert_eq!(pool.stats().recycled, 0);
        let giant = pool.get(128 * 1024 * 1024); // above the largest class
        assert!(giant.capacity() >= 128 * 1024 * 1024);
        assert_eq!(pool.stats().misses, 1);
        pool.put(giant); // files under the largest class it covers
        assert_eq!(pool.stats().recycled, 1);
    }

    #[test]
    fn cap_bounds_held_memory() {
        let pool = BufferPool::with_cap(2);
        for _ in 0..5 {
            pool.put(Vec::with_capacity(MIN_CLASS_BYTES));
        }
        let s = pool.stats();
        assert_eq!(s.recycled, 2);
        assert_eq!(s.dropped, 3);
        assert_eq!(s.held_bytes, 2 * MIN_CLASS_BYTES as u64);
        assert_eq!(s.peak_held_bytes, 2 * MIN_CLASS_BYTES as u64);
    }

    #[test]
    fn cross_thread_recycling_steals_from_other_shards() {
        let pool = BufferPool::new();
        let p2 = pool.clone();
        std::thread::spawn(move || {
            p2.put(Vec::with_capacity(MIN_CLASS_BYTES));
        })
        .join()
        .unwrap();
        // This thread's shard is empty, but get must still find the
        // buffer parked by the other thread.
        let _ = pool.get(100);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn observer_sees_events() {
        use std::sync::atomic::AtomicI64;
        #[derive(Default)]
        struct Obs {
            hits: AtomicU64,
            misses: AtomicU64,
            held: AtomicI64,
        }
        impl PoolObserver for Obs {
            fn on_hit(&self) {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            fn on_miss(&self) {
                self.misses.fetch_add(1, Ordering::Relaxed);
            }
            fn on_held_bytes(&self, delta: i64) {
                self.held.fetch_add(delta, Ordering::Relaxed);
            }
        }
        let obs = Arc::new(Obs::default());
        let pool = BufferPool::new();
        pool.set_observer(obs.clone());
        let b = pool.get(64);
        pool.put(b);
        let _ = pool.get(64);
        assert_eq!(obs.hits.load(Ordering::Relaxed), 1);
        assert_eq!(obs.misses.load(Ordering::Relaxed), 1);
        assert_eq!(obs.held.load(Ordering::Relaxed), 0, "put then get balances");
    }
}
