//! Zero-dependency runtime primitives.
//!
//! The reproduction must build and test on machines with no crates.io
//! access (the paper-era toolchain assumption, and the offline-first rule
//! in ROADMAP.md), so the few external utility crates the workspace used
//! to pull in are replaced by these std-only equivalents:
//!
//! * [`sync`] — [`Mutex`]/[`RwLock`] with `parking_lot`-style guards
//!   (locking never returns a `Result`; a poisoned lock propagates the
//!   original panic instead of surfacing `PoisonError` at every caller).
//! * [`channel`] — cloneable MPMC channels with bounded (backpressure)
//!   and unbounded flavors, the subset of `crossbeam-channel` the event
//!   bus and the HTTP accept queue need.
//! * [`rand`] — a small, seedable, splittable PRNG (SplitMix64 core) for
//!   deterministic jitter, loss, and fuzz-test generation.
//! * [`pool`] — a sharded, size-classed [`BufferPool`] so steady-state
//!   message traffic reuses body buffers instead of allocating.
//! * [`reactor`] — an epoll-backed readiness loop ([`Reactor`]), hashed
//!   [`DeadlineWheel`] timeouts, and a cross-thread wake pipe: the
//!   event-driven I/O core the HTTP transport multiplexes thousands of
//!   keep-alive connections on.
//! * [`cpu_pool`] — a small fixed [`CpuPool`] for the CPU-bound half of
//!   that split (handler and marshal work dispatched off the event loop),
//!   with a work-stealing `run_parallel` for splitting bulk marshal work.
//! * [`simd`] — explicit SSE2/AVX2 bulk kernels (byte swap, widen,
//!   `f32`↔`f64`, escape scanning) behind one-time latched feature
//!   detection, with bit-exact scalar fallbacks and an `SBQ_NO_SIMD`
//!   override.

pub mod channel;
pub mod cpu_pool;
pub mod pool;
pub mod rand;
pub mod reactor;
pub mod simd;
pub mod sync;

pub use cpu_pool::CpuPool;
pub use pool::BufferPool;
pub use rand::SmallRng;
pub use reactor::{raise_nofile_limit, DeadlineWheel, Reactor};
pub use sync::{Mutex, RwLock};
