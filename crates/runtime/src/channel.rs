//! Cloneable MPMC channels (the `crossbeam-channel` subset the workspace
//! uses): unbounded for event fan-out, bounded for backpressure queues
//! such as the HTTP server's accept queue.
//!
//! Semantics:
//! * any number of senders and receivers, all cloneable;
//! * `send` fails once every receiver is gone (so publishers can prune
//!   dead sinks);
//! * `recv` fails once every sender is gone *and* the queue is drained
//!   (so workers exit cleanly when the producer shuts down);
//! * bounded `send` blocks while the queue is full — that blocking *is*
//!   the backpressure.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when all receivers are gone; gives
/// the rejected value back.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is drained and
/// all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Drained and no sender remains.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Deadline passed with nothing queued.
    Timeout,
    /// Drained and no sender remains.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signaled when the queue gains an item or the last sender leaves.
    readable: Condvar,
    /// Signaled when the queue loses an item or the last receiver leaves.
    writable: Condvar,
    capacity: Option<usize>,
}

fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, State<T>> {
    shared.state.lock().unwrap_or_else(|p| p.into_inner())
}

/// Creates a channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Creates a channel holding at most `capacity` queued items; senders
/// block while it is full.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(capacity.max(1)))
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        readable: Condvar::new(),
        writable: Condvar::new(),
        capacity,
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// Sending half; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Queues `value`, blocking while a bounded channel is full. Fails if
    /// every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = lock(&self.shared);
        loop {
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            match self.shared.capacity {
                Some(cap) if st.queue.len() >= cap => {
                    st = self
                        .shared
                        .writable
                        .wait(st)
                        .unwrap_or_else(|p| p.into_inner());
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.shared.readable.notify_one();
        Ok(())
    }

    /// Queued items right now (racy; for introspection only).
    pub fn len(&self) -> usize {
        lock(&self.shared).queue.len()
    }

    /// Whether the queue is empty right now (racy; for introspection only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        lock(&self.shared).senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.shared);
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.shared.readable.notify_all();
        }
    }
}

/// Receiving half; cloneable (each item is delivered to exactly one
/// receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until an item arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut st = lock(&self.shared);
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.writable.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvError);
            }
            st = self
                .shared
                .readable
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Blocks up to `timeout` for an item.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.shared);
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.shared.writable.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .readable
                .wait_timeout(st, left)
                .unwrap_or_else(|p| p.into_inner());
            st = guard;
        }
    }

    /// Takes an item if one is queued.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = lock(&self.shared);
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.shared.writable.notify_one();
            return Ok(v);
        }
        if st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Drains currently-queued items without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.try_recv().ok())
    }

    /// Blocking iterator that ends when every sender is gone.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.recv().ok())
    }

    /// Queued items right now (racy; for introspection only).
    pub fn len(&self) -> usize {
        lock(&self.shared).queue.len()
    }

    /// Whether the queue is empty right now (racy; for introspection only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        lock(&self.shared).receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.shared);
        st.receivers -= 1;
        if st.receivers == 0 {
            drop(st);
            self.shared.writable.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_fifo() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        assert_eq!(
            rx.try_iter().collect::<Vec<_>>(),
            (0..10).collect::<Vec<_>>()
        );
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn recv_fails_after_senders_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_send_blocks_until_room() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = {
            let tx = tx.clone();
            std::thread::spawn(move || {
                tx.send(3).unwrap(); // blocks until a recv frees a slot
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        assert!(!t.is_finished(), "bounded send did not apply backpressure");
        assert_eq!(rx.recv(), Ok(1));
        t.join().unwrap();
        assert_eq!(rx.try_iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn items_delivered_exactly_once_across_receivers() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        let workers: Vec<_> = [rx, rx2]
            .into_iter()
            .map(|rx| std::thread::spawn(move || rx.iter().collect::<Vec<u32>>()))
            .collect();
        for i in 0..1000u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<u32> = workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = unbounded::<u8>();
        let t0 = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(40)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(40));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(40)), Ok(9));
    }
}
