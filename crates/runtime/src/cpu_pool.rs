//! A small fixed thread pool for CPU-bound work (handler dispatch,
//! marshalling) behind an event-driven I/O loop.
//!
//! The split this enables is the whole point of the reactor
//! architecture: the event loop owns *readiness* (cheap, one thread, ten
//! thousand sockets), the pool owns *computation* (bounded threads, one
//! job at a time each). Jobs are `FnOnce` closures over an unbounded
//! MPMC channel; submission never blocks the event loop.

use crate::channel::{self, Sender};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Fixed pool of named worker threads executing submitted closures.
pub struct CpuPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl CpuPool {
    /// Spawns `threads` workers (at least one), named `sbq-cpu-N`.
    pub fn new(threads: usize) -> CpuPool {
        let threads = threads.max(1);
        let (tx, rx) = channel::unbounded::<Job>();
        let workers = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("sbq-cpu-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            // A panicking job must not shrink the pool: the
                            // submitter is responsible for its own panic
                            // handling (the HTTP server catches handler
                            // panics itself); this is the backstop.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                    })
                    .expect("spawn cpu pool worker")
            })
            .collect();
        CpuPool {
            tx: Some(tx),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Queues `f` for execution; returns `false` after shutdown.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, f: F) -> bool {
        match &self.tx {
            Some(tx) => tx.send(Box::new(f)).is_ok(),
            None => false,
        }
    }

    /// Drops the submission side, lets workers drain queued jobs, and
    /// joins them. Idempotent.
    pub fn shutdown(&mut self) {
        self.tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for CpuPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_jobs_on_fixed_threads_and_drains_on_shutdown() {
        let mut pool = CpuPool::new(2);
        assert_eq!(pool.threads(), 2);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let done = Arc::clone(&done);
            assert!(pool.spawn(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(
            done.load(Ordering::SeqCst),
            100,
            "shutdown drains the queue"
        );
        assert!(!pool.spawn(|| {}), "spawn after shutdown is rejected");
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let mut pool = CpuPool::new(1);
        pool.spawn(|| panic!("boom"));
        let done = Arc::new(AtomicUsize::new(0));
        let d2 = Arc::clone(&done);
        pool.spawn(move || {
            d2.store(7, Ordering::SeqCst);
        });
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = CpuPool::new(0);
        assert_eq!(pool.threads(), 1);
    }
}
