//! A small fixed thread pool for CPU-bound work (handler dispatch,
//! marshalling) behind an event-driven I/O loop.
//!
//! The split this enables is the whole point of the reactor
//! architecture: the event loop owns *readiness* (cheap, one thread, ten
//! thousand sockets), the pool owns *computation* (bounded threads, one
//! job at a time each). Jobs are `FnOnce` closures over an unbounded
//! MPMC channel; submission never blocks the event loop.
//!
//! On top of the fire-and-forget [`CpuPool::spawn`] API sits a blocking
//! fork/join primitive, [`CpuPool::run_parallel`]: the caller hands over
//! an indexed chunk function, chunk ids are dealt round-robin into
//! per-participant deques, idle participants steal from the back of
//! other deques, and the caller itself works the job (so a saturated —
//! or single-threaded — pool degrades to serial execution instead of
//! deadlocking). The marshal path uses it to split multi-megabyte array
//! fields across cores; [`PoolStats`] exposes `steals` and
//! `parallel_jobs` counters for telemetry.

use crate::channel::{self, Sender};
use crate::sync::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Monotonic counters describing the pool's fork/join activity.
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Chunks executed by a participant other than the deque they were
    /// dealt to (work-stealing events).
    pub steals: AtomicU64,
    /// `run_parallel` invocations that actually forked (≥ 2 participants).
    pub parallel_jobs: AtomicU64,
    /// Total chunks executed across all parallel jobs.
    pub parallel_chunks: AtomicU64,
}

/// Fixed pool of named worker threads executing submitted closures.
pub struct CpuPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    stats: Arc<PoolStats>,
}

/// State shared between the caller and helper workers of one
/// `run_parallel` invocation.
struct ParallelJob {
    /// One chunk-id deque per participant (slot 0 is the caller).
    deques: Vec<Mutex<VecDeque<usize>>>,
    /// Chunks not yet *completed* (decremented after `f` returns).
    remaining: AtomicUsize,
    stats: Arc<PoolStats>,
    /// The chunk body. The `'static` is a lie told by `run_parallel`,
    /// which transmutes the caller's borrow; it is sound because
    /// `run_parallel` does not return until `remaining` is zero, and
    /// `remaining` only reaches zero after every `f` call has returned —
    /// no participant touches `f` once the deques are empty.
    f: &'static (dyn Fn(usize) + Sync),
}

fn work(job: &ParallelJob, slot: usize) {
    loop {
        let mut next = job.deques[slot].lock().pop_front();
        if next.is_none() {
            // Own deque dry: steal from the *back* of a victim's deque
            // (opposite end from the owner, minimizing contention).
            for off in 1..job.deques.len() {
                let victim = (slot + off) % job.deques.len();
                if let Some(i) = job.deques[victim].lock().pop_back() {
                    job.stats.steals.fetch_add(1, Ordering::Relaxed);
                    next = Some(i);
                    break;
                }
            }
        }
        match next {
            Some(i) => {
                (job.f)(i);
                job.remaining.fetch_sub(1, Ordering::Release);
            }
            None => return,
        }
    }
}

impl CpuPool {
    /// Spawns `threads` workers (at least one), named `sbq-cpu-N`.
    pub fn new(threads: usize) -> CpuPool {
        let threads = threads.max(1);
        let (tx, rx) = channel::unbounded::<Job>();
        let workers = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("sbq-cpu-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            // A panicking job must not shrink the pool: the
                            // submitter is responsible for its own panic
                            // handling (the HTTP server catches handler
                            // panics itself); this is the backstop.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                    })
                    .expect("spawn cpu pool worker")
            })
            .collect();
        CpuPool {
            tx: Some(tx),
            workers,
            stats: Arc::new(PoolStats::default()),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Fork/join telemetry counters.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Queues `f` for execution; returns `false` after shutdown.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, f: F) -> bool {
        match &self.tx {
            Some(tx) => tx.send(Box::new(f)).is_ok(),
            None => false,
        }
    }

    /// Executes `f(0..chunks)` with the pool's workers helping, blocking
    /// until every chunk completes. Chunk ids are dealt round-robin into
    /// per-participant work-stealing deques; the caller is participant 0,
    /// so a busy or single-worker pool degrades to (at worst) serial
    /// execution on the calling thread rather than deadlocking — which
    /// also makes nested `run_parallel` from inside a pool job safe.
    ///
    /// Chunks should be coarse (hundreds of microseconds and up): the
    /// fork cost is one queue submission per helper. Callers are
    /// expected to gate on a payload-size threshold so small work never
    /// pays it — see `sbq-pbio`'s parallel split policy.
    pub fn run_parallel(&self, chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if chunks == 0 {
            return;
        }
        let helpers = self.workers.len().min(chunks - 1);
        if helpers == 0 || self.tx.is_none() {
            for i in 0..chunks {
                f(i);
            }
            return;
        }
        let slots = helpers + 1;
        // SAFETY: see the `ParallelJob::f` invariant — the borrow is only
        // promoted to `'static` because this function blocks until
        // `remaining == 0`, which happens-after the last `f` return
        // (Release decrement / Acquire wait pair below).
        let f: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        let job = Arc::new(ParallelJob {
            deques: (0..slots).map(|_| Mutex::new(VecDeque::new())).collect(),
            remaining: AtomicUsize::new(chunks),
            stats: Arc::clone(&self.stats),
            f,
        });
        for i in 0..chunks {
            job.deques[i % slots].lock().push_back(i);
        }
        for slot in 1..slots {
            let job = Arc::clone(&job);
            // `spawn` can only fail after shutdown; the caller-side loop
            // below still executes every chunk in that case (steals from
            // the orphaned deques), so the join invariant holds.
            self.spawn(move || work(&job, slot));
        }
        self.stats.parallel_jobs.fetch_add(1, Ordering::Relaxed);
        self.stats
            .parallel_chunks
            .fetch_add(chunks as u64, Ordering::Relaxed);
        work(&job, 0);
        // The caller ran dry; helpers may still be mid-chunk. The wait is
        // short (one chunk max) so a yield spin beats a condvar here.
        while job.remaining.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
        }
    }

    /// Drops the submission side, lets workers drain queued jobs, and
    /// joins them. Idempotent.
    pub fn shutdown(&mut self) {
        self.tx = None;
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for CpuPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

static MARSHAL_POOL: OnceLock<CpuPool> = OnceLock::new();

/// The process-wide pool used for splitting bulk marshal work
/// ([`crate::simd`] kernels over multi-megabyte arrays). Sized from
/// `available_parallelism`, overridable with `SBQ_MARSHAL_THREADS`;
/// created on first use and never shut down.
pub fn marshal_pool() -> &'static CpuPool {
    MARSHAL_POOL.get_or_init(|| {
        let threads = std::env::var("SBQ_MARSHAL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        CpuPool::new(threads.clamp(1, 64))
    })
}

/// The marshal pool only if a bulk split has already instantiated it.
/// Telemetry reads go through here: observing the counters must never
/// be the thing that spawns the worker threads (processes that never
/// marshal a multi-megabyte array keep their exact thread budget).
pub fn try_marshal_pool() -> Option<&'static CpuPool> {
    MARSHAL_POOL.get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_jobs_on_fixed_threads_and_drains_on_shutdown() {
        let mut pool = CpuPool::new(2);
        assert_eq!(pool.threads(), 2);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let done = Arc::clone(&done);
            assert!(pool.spawn(move || {
                done.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(
            done.load(Ordering::SeqCst),
            100,
            "shutdown drains the queue"
        );
        assert!(!pool.spawn(|| {}), "spawn after shutdown is rejected");
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let mut pool = CpuPool::new(1);
        pool.spawn(|| panic!("boom"));
        let done = Arc::new(AtomicUsize::new(0));
        let d2 = Arc::clone(&done);
        pool.spawn(move || {
            d2.store(7, Ordering::SeqCst);
        });
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = CpuPool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn run_parallel_executes_every_chunk_exactly_once() {
        let pool = CpuPool::new(3);
        for chunks in [0usize, 1, 2, 3, 7, 64, 257] {
            let hits: Vec<AtomicUsize> = (0..chunks).map(|_| AtomicUsize::new(0)).collect();
            pool.run_parallel(chunks, &|i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "chunks={chunks}"
            );
        }
        assert!(pool.stats().parallel_jobs.load(Ordering::Relaxed) >= 5);
        assert!(pool.stats().parallel_chunks.load(Ordering::Relaxed) >= 2 + 3 + 7 + 64 + 257);
    }

    #[test]
    fn run_parallel_borrows_caller_state_and_joins_before_returning() {
        let pool = CpuPool::new(2);
        let mut out = vec![0u64; 1000];
        {
            // Non-'static captures: disjoint writes through a raw pointer,
            // exactly the shape the marshal chunk split uses.
            let base = out.as_mut_ptr() as usize;
            pool.run_parallel(10, &move |i| {
                let p = base as *mut u64;
                for j in i * 100..(i + 1) * 100 {
                    // SAFETY: chunk ranges are disjoint and in bounds.
                    unsafe { *p.add(j) = j as u64 * 3 };
                }
            });
        }
        // If run_parallel returned before the helpers finished, some
        // lanes would still be zero (and the borrow above would be UB).
        assert!(out.iter().enumerate().all(|(j, &v)| v == j as u64 * 3));
    }

    #[test]
    fn run_parallel_after_shutdown_falls_back_to_serial() {
        let mut pool = CpuPool::new(2);
        pool.shutdown();
        let n = AtomicUsize::new(0);
        pool.run_parallel(5, &|_| {
            n.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(n.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn nested_run_parallel_does_not_deadlock() {
        let pool = Arc::new(CpuPool::new(2));
        let n = Arc::new(AtomicUsize::new(0));
        let (p2, n2) = (Arc::clone(&pool), Arc::clone(&n));
        // Outer job occupies a worker, inner fork must still complete
        // because the inner caller participates in its own job.
        pool.spawn(move || {
            p2.run_parallel(8, &|_| {
                n2.fetch_add(1, Ordering::SeqCst);
            });
        });
        pool.run_parallel(8, &|_| {
            n.fetch_add(1, Ordering::SeqCst);
        });
        // Wait for the spawned outer job to finish too.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while n.load(Ordering::SeqCst) < 16 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(n.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn marshal_pool_is_latched_and_usable() {
        let p1 = marshal_pool();
        let p2 = marshal_pool();
        assert!(std::ptr::eq(p1, p2));
        let n = AtomicUsize::new(0);
        p1.run_parallel(4, &|_| {
            n.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(n.load(Ordering::SeqCst), 4);
    }
}
