//! A small seedable PRNG (SplitMix64) for deterministic simulation and
//! fuzz-test generation.
//!
//! Not cryptographic — it exists so the netsim's jitter/loss schedules
//! and the fuzz suites stay reproducible per seed, which is what the
//! paper-figure regeneration depends on.

/// SplitMix64 generator: tiny state, full 64-bit period, passes BigCrush
/// for this workspace's purposes (statistical noise, not keys).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seeds the generator; equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 mantissa bits of a uniform u64 → uniform [0,1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below(0)");
        // Modulo bias is ≤ bound/2^64 — irrelevant at these magnitudes.
        self.next_u64() % bound
    }

    /// Uniform integer in `[lo, hi)`; `lo < hi` required.
    pub fn gen_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "gen_range({lo}, {hi})");
        lo + self.gen_below((hi - lo) as u64) as i64
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// A derived, independently-seeded generator (for giving each worker
    /// or test case its own stream).
    pub fn split(&mut self) -> SmallRng {
        SmallRng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_below_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for bound in [1u64, 2, 26, 1000] {
            for _ in 0..200 {
                assert!(r.gen_below(bound) < bound);
            }
        }
    }

    #[test]
    fn bernoulli_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn split_streams_differ() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut s1 = r.split();
        let mut s2 = r.split();
        assert_ne!(
            (0..8).map(|_| s1.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| s2.next_u64()).collect::<Vec<_>>()
        );
    }
}
