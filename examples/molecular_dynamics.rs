//! The molecular-dynamics bond server (paper §IV-C.2): a client streams
//! bond graphs; the quality policy batches 1-4 timesteps per response
//! depending on reported network quality.
//!
//! ```sh
//! cargo run --example molecular_dynamics
//! ```

use sbq_mdsim::{batch_graphs, bond_service, md_quality_file, BondServer};
use sbq_model::Value;
use sbq_qos::QualityManager;
use soap_binq::{SoapClient, WireEncoding};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bands = [10.0, 50.0, 150.0];
    let server =
        BondServer::new(110, 7).serve("127.0.0.1:0".parse()?, WireEncoding::Pbio, Some(bands))?;
    println!("bond server on {}", server.addr());
    println!("metrics at http://{}/metrics", server.addr());

    let svc = bond_service("x");
    let mut client = SoapClient::connect(server.addr(), &svc, WireEncoding::Pbio)?
        .with_quality(QualityManager::new(md_quality_file(bands)));
    let request = || Value::struct_of("bond_request", vec![("max_timesteps", Value::Int(4))]);

    println!("\nidle network — expect 4 timesteps per response:");
    for _ in 0..3 {
        let batch = batch_graphs(&client.call("get_bonds", request())?);
        let ts: Vec<u64> = batch.iter().map(|g| g.timestep).collect();
        println!(
            "  batch of {} (timesteps {ts:?}), ~{} KB",
            batch.len(),
            batch.iter().map(|g| g.native_size()).sum::<usize>() / 1024
        );
    }

    println!("\nsustained congestion (RTT 400 ms) — batches shrink:");
    for round in 0..4 {
        for _ in 0..4 {
            client
                .quality_mut()
                .unwrap()
                .observe_rtt(Duration::from_millis(400), Duration::ZERO);
        }
        let batch = batch_graphs(&client.call("get_bonds", request())?);
        println!("  round {round}: {} timesteps per response", batch.len());
    }

    println!("\nrecovery — loopback RTTs restore the full batch:");
    let mut calls = 0;
    loop {
        let batch = batch_graphs(&client.call("get_bonds", request())?);
        calls += 1;
        if batch.len() == 4 || calls > 80 {
            println!("  back to 4 timesteps after {calls} calls");
            break;
        }
    }
    Ok(())
}
