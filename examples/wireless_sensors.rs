//! The paper's opening motivation: "the use of in-vehicle camera sensors
//! to report on traffic or emergency situations, using wireless links
//! with limited bandwidths."
//!
//! A fleet of camera sensors shares a lossy 11 Mbps wireless uplink. Each
//! sensor pushes edge-detected frames through SOAP-binQ quality
//! management; when its share of the link degrades (congestion from the
//! other sensors plus packet loss), it independently drops to half
//! resolution, recovering when the air clears. The whole scenario runs on
//! the deterministic virtual-time simulator.
//!
//! ```sh
//! cargo run --release --example wireless_sensors
//! ```

use sbq_imaging::{image_quality_file, install_resize_handlers};
use sbq_netsim::{CrossTraffic, LinkSpec, SimLink};
use sbq_qos::{QualityManager, RttEstimatorKind};
use std::time::Duration;

const FULL_FRAME: usize = 640 * 480 * 3;
const HALF_FRAME: usize = 320 * 240 * 3;
const SENSORS: usize = 4;
const RUN: Duration = Duration::from_secs(90);

struct Sensor {
    id: usize,
    link: SimLink,
    qm: QualityManager,
    sent_full: usize,
    sent_half: usize,
    worst_ms: f64,
}

fn main() {
    println!(
        "{} in-vehicle cameras on a shared lossy {} uplink\n",
        SENSORS,
        LinkSpec::wireless_11mbps().name
    );

    // Each sensor sees the shared medium as background load from the
    // other sensors (staggered bursts) plus 2% packet loss from motion.
    let mut sensors: Vec<Sensor> = (0..SENSORS)
        .map(|id| {
            let phase = Duration::from_secs(10 * id as u64);
            let mut bursts = vec![0.30; SENSORS - 1]; // steady peers
            bursts.push(0.85); // a passing heavy burst
            let cross = CrossTraffic::schedule(vec![sbq_netsim::traffic::Segment {
                start: phase + Duration::from_secs(20),
                end: phase + Duration::from_secs(40),
                load: bursts[id % bursts.len()],
            }]);
            // EWMA keeps the fleet steady; swap in
            // `RttEstimatorKind::Jacobson` to see variance-sensitive
            // degradation kick in earlier on this lossy link.
            let qm = QualityManager::new(image_quality_file(900.0))
                .with_estimator(RttEstimatorKind::Ewma);
            install_resize_handlers(qm.handlers());
            Sensor {
                id,
                link: SimLink::new(LinkSpec::wireless_11mbps())
                    .with_cross_traffic(cross)
                    .with_loss(100 + id as u64, 0.02)
                    .with_jitter(id as u64, 0.10),
                qm,
                sent_full: 0,
                sent_half: 0,
                worst_ms: 0.0,
            }
        })
        .collect();

    for sensor in &mut sensors {
        while sensor.link.now() < RUN {
            let half = sensor.qm.select().message_type == "image_half";
            let frame = if half { HALF_FRAME } else { FULL_FRAME };
            let server_time = Duration::from_millis(if half { 2 } else { 8 });
            let rtt = sensor.link.request_response(180, frame + 300, server_time);
            sensor.qm.observe_rtt(rtt, server_time);
            if half {
                sensor.sent_half += 1;
            } else {
                sensor.sent_full += 1;
            }
            sensor.worst_ms = sensor.worst_ms.max(rtt.as_secs_f64() * 1e3);
            sensor.link.advance(Duration::from_millis(800)); // frame cadence
        }
    }

    println!("sensor | full frames | half frames | worst resp | retransmits | band switches");
    println!("{}", "-".repeat(80));
    for s in &sensors {
        println!(
            "{:>6} | {:>11} | {:>11} | {:>8.1}ms | {:>11} | {:>13}",
            s.id,
            s.sent_full,
            s.sent_half,
            s.worst_ms,
            s.link.retransmissions(),
            s.qm.switches(),
        );
    }
    println!(
        "\nEach camera degrades during its burst window and recovers afterwards —\n\
         the continuous quality management the paper motivates in its first page,\n\
         on the substrate its intro describes."
    );
}
