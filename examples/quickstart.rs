//! Quickstart: define a service, start a SOAP-binQ server, call it with
//! every wire encoding, and inspect what traveled.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! `--smoke` binds the server, self-probes the runtime health endpoints
//! (`/healthz`, `/statusz`), and exits nonzero if either misbehaves —
//! what the CI smoke step runs.

use sbq_model::{workload, TypeDesc, Value};
use sbq_wsdl::{write_wsdl, ServiceDef};
use soap_binq::{Registry, ServerConfig, SoapClient, SoapServerBuilder, TraceConfig, WireEncoding};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // 0. Request tracing: keep 1 in 4 calls in the flight recorder
    //    (errors always record). The config must be set before the first
    //    server binds — the ring is allocated on first use.
    Registry::default().set_trace_config(TraceConfig::new().sample_one_in(4));

    // 1. Describe the service — in a real deployment this comes from a
    //    WSDL file; here we build it and print the WSDL it advertises.
    let svc = ServiceDef::new("Calculator", "urn:sbq:calc", "http://127.0.0.1:0/calc")
        .with_operation("sum", TypeDesc::list_of(TypeDesc::Int), TypeDesc::Int)
        .with_operation(
            "stats",
            TypeDesc::list_of(TypeDesc::Float),
            TypeDesc::struct_of(
                "stats",
                vec![("mean", TypeDesc::Float), ("max", TypeDesc::Float)],
            ),
        );
    println!("--- WSDL the service advertises ---");
    println!("{}", write_wsdl(&svc)?);

    // 2. Implement and bind the server (binary PBIO wire encoding: the
    //    SOAP-bin high-performance mode). The transport is an event-driven
    //    reactor: connections are epoll registrations, not threads, so the
    //    CPU pool only needs to cover concurrent *handlers* — two threads
    //    happily hold thousands of idle keep-alive connections. Parked
    //    connections release their buffers and are reaped after 30 s.
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)?
        .transport(
            ServerConfig::default()
                .worker_threads(2)
                .keep_alive_max_idle(Duration::from_secs(30)),
        )
        .handle("sum", |v| {
            Value::Int(v.as_int_array().map(|xs| xs.iter().sum()).unwrap_or(0))
        })
        .handle("stats", |v| {
            let xs = v.as_float_array().unwrap_or_default();
            let mean = if xs.is_empty() {
                0.0
            } else {
                xs.iter().sum::<f64>() / xs.len() as f64
            };
            let max = xs.iter().cloned().fold(f64::MIN, f64::max);
            Value::struct_of(
                "stats",
                vec![("mean", Value::Float(mean)), ("max", Value::Float(max))],
            )
        })
        .bind("127.0.0.1:0".parse()?)?;
    println!("server listening on {}", server.addr());
    println!("metrics at http://{}/metrics", server.addr());
    println!(
        "traces  at http://{}/trace.json (open in Perfetto)",
        server.addr()
    );
    println!("health  at http://{}/healthz and /statusz", server.addr());

    if smoke {
        // CI smoke: the liveness and readiness endpoints of a freshly
        // bound server must answer well-formed and healthy.
        let mut http = sbq_http::HttpClient::connect(server.addr())?;
        let resp = http.send(sbq_http::Request::get("/healthz"))?;
        if resp.status != 200 || resp.body != b"ok\n" {
            eprintln!("smoke: /healthz answered {} {:?}", resp.status, resp.body);
            std::process::exit(1);
        }
        let resp = http.send(sbq_http::Request::get("/statusz"))?;
        let body = String::from_utf8(resp.body)?;
        if let Err(e) = sbq_telemetry::expo::validate_json(&body) {
            eprintln!("smoke: /statusz is not valid JSON: {e}\n---\n{body}");
            std::process::exit(1);
        }
        if resp.status != 200 || !body.contains("\"ready\":true") {
            eprintln!("smoke: /statusz answered {}: {body}", resp.status);
            std::process::exit(1);
        }
        println!("smoke: /healthz ok, /statusz ready");
        return Ok(());
    }

    // 3. Call it with each wire encoding and compare the bytes moved.
    for enc in [
        WireEncoding::Pbio,
        WireEncoding::Xml,
        WireEncoding::CompressedXml,
    ] {
        // A server speaks one encoding; spin one per encoding here so the
        // comparison is honest.
        let server = SoapServerBuilder::new(&svc, enc)?
            .handle("sum", |v| {
                Value::Int(v.as_int_array().map(|xs| xs.iter().sum()).unwrap_or(0))
            })
            .handle("stats", |v| {
                let xs = v.as_float_array().unwrap_or_default();
                let mean = if xs.is_empty() {
                    0.0
                } else {
                    xs.iter().sum::<f64>() / xs.len() as f64
                };
                let max = xs.iter().cloned().fold(f64::MIN, f64::max);
                Value::struct_of(
                    "stats",
                    vec![("mean", Value::Float(mean)), ("max", Value::Float(max))],
                )
            })
            .bind("127.0.0.1:0".parse()?)?;
        let mut client = SoapClient::connect(server.addr(), &svc, enc)?;

        let arr = workload::int_array(1000, 7);
        let sum = client.call("sum", arr)?;
        let stats = client.call("stats", workload::float_array(1000, 7))?;
        println!(
            "{enc:?}: sum={sum}, stats={stats}; bytes sent={}, received={}",
            client.stats().bytes_sent,
            client.stats().bytes_received
        );
    }

    println!("\nnote: the PBIO encoding moves a fraction of the XML bytes — that gap");
    println!("is the entire SOAP-bin story (see `cargo run -p sbq-bench --bin micro`).");
    Ok(())
}
