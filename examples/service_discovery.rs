//! UDDI-style discovery (paper §III-B.b future work): a provider
//! publishes its WSDL *and* its quality file to a registry; a client
//! discovers both and talks to the service with quality management
//! configured entirely from the registry — "without knowledge of the
//! actual message types used in data transmission".
//!
//! ```sh
//! cargo run --example service_discovery
//! ```

use sbq_model::{TypeDesc, Value};
use sbq_registry::{RegistryClient, RegistryServer};
use sbq_wsdl::ServiceDef;
use soap_binq::{SoapClient, SoapServerBuilder, WireEncoding};
use std::time::Duration;

const QUALITY_FILE: &str = "\
attribute rtt
0 50 - reading_full
50 inf - reading_small
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The registry itself.
    let registry = RegistryServer::new().serve("127.0.0.1:0".parse()?, WireEncoding::Pbio)?;
    println!("registry on {}", registry.addr());
    println!("metrics at http://{}/metrics", registry.addr());

    // --- provider side -----------------------------------------------------
    let reading_ty = TypeDesc::struct_of(
        "reading",
        vec![
            ("seq", TypeDesc::Int),
            ("temps", TypeDesc::list_of(TypeDesc::Float)),
            ("site", TypeDesc::Str),
        ],
    );
    // Start the actual sensor service first so its WSDL can advertise the
    // real endpoint.
    let mut builder_svc = ServiceDef::new("SensorFeed", "urn:demo:sensors", "pending")
        .with_operation("read", TypeDesc::Int, reading_ty.clone());
    // Server-side quality management from the very same file we publish.
    let mut qm = sbq_qos::QualityManager::new(sbq_qos::QualityFile::parse(QUALITY_FILE)?);
    qm.define_message_type(
        "reading_small",
        TypeDesc::struct_of("reading_small", vec![("seq", TypeDesc::Int)]),
    );
    let sensor_server = SoapServerBuilder::new(&builder_svc, WireEncoding::Pbio)?
        .handle("read", |seq| {
            Value::struct_of(
                "reading",
                vec![
                    ("seq", seq),
                    ("temps", Value::FloatArray(vec![20.5, 21.0, 20.75])),
                    ("site", Value::Str("rooftop".into())),
                ],
            )
        })
        .with_quality(qm)
        .bind("127.0.0.1:0".parse()?)?;
    builder_svc.location = format!("http://{}/sensors", sensor_server.addr());
    println!("sensor service on {}", sensor_server.addr());
    println!("metrics at http://{}/metrics", sensor_server.addr());

    // Publish WSDL + quality file.
    let mut provider = RegistryClient::connect(registry.addr(), WireEncoding::Pbio)?;
    provider.publish(&builder_svc, Some(QUALITY_FILE))?;
    println!("published {:?} with its quality file", builder_svc.name);

    // --- consumer side ------------------------------------------------------
    let mut consumer = RegistryClient::connect(registry.addr(), WireEncoding::Pbio)?;
    println!("registry lists: {:?}", consumer.list()?);
    let (svc, qm) = consumer.discover("SensorFeed")?;
    println!(
        "discovered {} at {} ({} operations, quality file: {})",
        svc.name,
        svc.location,
        svc.operations.len(),
        if qm.is_some() { "yes" } else { "no" }
    );

    // Connect to the advertised endpoint with the discovered quality
    // manager attached.
    let addr: std::net::SocketAddr = svc
        .location
        .trim_start_matches("http://")
        .trim_end_matches("/sensors")
        .parse()?;
    let mut client = SoapClient::connect(addr, &svc, WireEncoding::Pbio)?
        .with_quality(qm.expect("quality file was published"));

    let v = client.call("read", Value::Int(1))?;
    println!("\nhealthy network: {v}");

    for _ in 0..5 {
        client
            .quality_mut()
            .unwrap()
            .observe_rtt(Duration::from_millis(300), Duration::ZERO);
    }
    let v = client.call("read", Value::Int(2))?;
    println!(
        "congested ({}): {v}",
        client
            .stats()
            .last_message_type
            .as_deref()
            .unwrap_or("full")
    );
    Ok(())
}
