//! The WSDL compiler end to end (paper §III-A, Fig. 3): parse a WSDL
//! document, derive the PBIO formats for every operation, and emit the
//! Rust client/server stub source.
//!
//! ```sh
//! cargo run --example wsdl_compiler [path/to/service.wsdl]
//! ```
//! Without an argument it compiles a built-in sensor-service WSDL.

use sbq_pbio::format::FormatOptions;
use sbq_wsdl::{compile, generate_rust_stubs, parse_wsdl, write_wsdl, ServiceDef};

const BUILTIN: &str = r#"<?xml version="1.0"?>
<definitions name="SensorService" targetNamespace="urn:example:sensors"
    xmlns:tns="urn:example:sensors" xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <types>
    <xsd:schema targetNamespace="urn:example:sensors">
      <xsd:complexType name="reading">
        <xsd:sequence>
          <xsd:element name="sensor_id" type="xsd:long"/>
          <xsd:element name="timestamp" type="xsd:long"/>
          <xsd:element name="samples" type="xsd:double" minOccurs="0" maxOccurs="unbounded"/>
          <xsd:element name="frame" type="xsd:base64Binary"/>
        </xsd:sequence>
      </xsd:complexType>
      <xsd:complexType name="query">
        <xsd:sequence>
          <xsd:element name="sensor_id" type="xsd:long"/>
          <xsd:element name="window" type="xsd:int"/>
        </xsd:sequence>
      </xsd:complexType>
    </xsd:schema>
  </types>
  <message name="get_reading_input"><part name="params" type="tns:query"/></message>
  <message name="get_reading_output"><part name="result" type="tns:reading"/></message>
  <portType name="SensorServicePortType">
    <operation name="get_reading">
      <input message="tns:get_reading_input"/>
      <output message="tns:get_reading_output"/>
    </operation>
  </portType>
  <service name="SensorService">
    <port name="SensorServicePort" binding="tns:SensorServiceBinding">
      <soap:address location="http://sensors.example:8080/soap" xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/"/>
    </port>
  </service>
</definitions>
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let doc = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => BUILTIN.to_string(),
    };

    let svc: ServiceDef = parse_wsdl(&doc)?;
    println!("service {} @ {}", svc.name, svc.location);
    for op in &svc.operations {
        println!(
            "  operation {}: {} -> {}",
            op.name,
            op.input.name(),
            op.output.name()
        );
    }

    // Derive PBIO formats (Fig. 3's WSDL -> PBIO format generation).
    let compiled = compile(&svc, FormatOptions::default())?;
    println!("\nderived PBIO formats:");
    for stub in &compiled.stubs {
        println!(
            "  {}: input format {:?} ({} fields, {} B description), output format {:?}",
            stub.operation,
            stub.input_format.name,
            stub.input_format.fields.len(),
            stub.input_format.to_bytes().len(),
            stub.output_format.name,
        );
    }

    println!("\n--- generated Rust stubs ---");
    println!("{}", generate_rust_stubs(&compiled));

    println!("--- round-trip: regenerated WSDL ---");
    println!("{}", write_wsdl(&svc)?);
    Ok(())
}
