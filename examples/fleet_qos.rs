//! Fleet QoS quickstart: one server, many clients, each served at its
//! own quality band — and shed with `503 Retry-After` when the server
//! overloads.
//!
//! The paper's quality management is per-connection; a real deployment
//! fronts thousands of heterogeneous edge clients at once. This example
//! runs the server-side fleet table live on loopback:
//!
//! 1. three clients report very different RTT estimates in their SOAP
//!    QoS headers, and the same server concurrently answers each at the
//!    band its *own* network deserves;
//! 2. the CPU pool is then wedged with a slow call, and admission
//!    control sheds the worst-band client from the event loop (typed
//!    [`SoapError::Overloaded`] with the server's `Retry-After`) while
//!    still admitting the healthy one;
//! 3. the fleet's view is read back from the live `/metrics` exposition.
//!
//! ```sh
//! cargo run --release --example fleet_qos
//! ```

use sbq_model::{TypeDesc, Value};
use sbq_qos::{FleetQos, QualityFile, QualityManager};
use sbq_wsdl::ServiceDef;
use soap_binq::client::ClientConfig;
use soap_binq::{
    AdmissionPolicy, Registry, ServerConfig, SoapClient, SoapError, SoapServerBuilder, WireEncoding,
};
use std::time::Duration;

const QUALITY_FILE: &str = "\
attribute rtt
0 50 - reading_full
50 250 - reading_half
250 inf - reading_min
";

fn quality_manager() -> QualityManager {
    let mut qm = QualityManager::new(QualityFile::parse(QUALITY_FILE).unwrap());
    qm.define_message_type(
        "reading_half",
        TypeDesc::struct_of(
            "reading_half",
            vec![("seq", TypeDesc::Int), ("site", TypeDesc::Str)],
        ),
    );
    qm.define_message_type(
        "reading_min",
        TypeDesc::struct_of("reading_min", vec![("seq", TypeDesc::Int)]),
    );
    qm
}

fn reading() -> Value {
    Value::struct_of(
        "reading",
        vec![
            ("seq", Value::Int(7)),
            (
                "temps",
                Value::FloatArray((0..200).map(|i| i as f64 * 0.5).collect()),
            ),
            ("site", Value::Str("tower-3".into())),
        ],
    )
}

/// What actually survived quality reduction, as seen by the client
/// (reduced payloads decode into the full layout, padded with defaults).
fn served_shape(v: &Value) -> String {
    let s = v.as_struct().unwrap();
    let temps = match s.field("temps") {
        Some(Value::FloatArray(xs)) => xs.len(),
        _ => 0,
    };
    let site = matches!(s.field("site"), Some(Value::Str(x)) if !x.is_empty());
    match (temps, site) {
        (0, false) => "seq only (min)".to_string(),
        (0, true) => "seq + site (half)".to_string(),
        (n, _) => format!("full ({n} temps)"),
    }
}

fn main() {
    let svc = ServiceDef::new("Sensor", "urn:sbq:sensor", "x").with_operation(
        "read",
        TypeDesc::Int,
        TypeDesc::struct_of(
            "reading",
            vec![
                ("seq", TypeDesc::Int),
                ("temps", TypeDesc::list_of(TypeDesc::Float)),
                ("site", TypeDesc::Str),
            ],
        ),
    );

    let reg = Registry::new();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Xml)
        .unwrap()
        .handle("read", |v| {
            // `read(1)` parks the worker: the overload lever for act 2.
            if v.as_int().unwrap_or(0) == 1 {
                std::thread::sleep(Duration::from_millis(500));
            }
            reading()
        })
        .with_quality(quality_manager())
        .with_fleet(FleetQos::new(QualityFile::parse(QUALITY_FILE).unwrap()).telemetry(&reg))
        .admission_policy(
            AdmissionPolicy::new()
                .overload_factor(0.0) // any queued job counts as overload
                .retry_after(Duration::from_secs(2)),
        )
        .transport(
            ServerConfig::default()
                .worker_threads(1)
                .telemetry(reg.clone()),
        )
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();
    let addr = server.addr();
    println!("sensor server with fleet QoS on {addr}\n");

    // Act 1: three edge clients, three networks, one server. Each
    // client's estimator is pre-seeded with what its link "measured";
    // every call reports it in the envelope's QoS header.
    println!("-- per-client bands --");
    println!(
        "{:<12} | {:>12} | {:>4} | served",
        "client", "reported rtt", "band"
    );
    let mut edges = Vec::new();
    for (id, rtt_ms) in [("edge-wan", 12u64), ("edge-dsl", 140), ("edge-mobile", 600)] {
        let mut c = SoapClient::connect_with(
            addr,
            &svc,
            WireEncoding::Xml,
            ClientConfig::new().client_id(id),
        )
        .unwrap()
        .with_quality(quality_manager());
        c.quality_mut()
            .unwrap()
            .observe_rtt(Duration::from_millis(rtt_ms), Duration::ZERO);
        let v = c.call("read", Value::Int(0)).unwrap();
        let fleet = server.fleet().unwrap();
        println!(
            "{id:<12} | {rtt_ms:>10}ms | {:>4} | {}",
            fleet.band_of(id).unwrap(),
            served_shape(&v)
        );
        edges.push(c);
    }

    // Act 2: wedge the single-thread pool, then watch admission control
    // triage. The worst-band client is shed on the event loop (it never
    // waits behind the stuck pool); the healthy one is still admitted.
    println!("\n-- overload --");
    let svc2 = svc.clone();
    let blocker = std::thread::spawn(move || {
        let mut c = SoapClient::connect(addr, &svc2, WireEncoding::Xml)
            .unwrap()
            .with_quality(quality_manager());
        c.call("read", Value::Int(1)).unwrap()
    });
    std::thread::sleep(Duration::from_millis(100));

    match edges[2].call("read", Value::Int(0)) {
        Err(SoapError::Overloaded { retry_after }) => {
            println!(
                "edge-mobile  shed: 503, Retry-After {retry_after:?} (worst band, not idempotent)"
            )
        }
        other => println!("edge-mobile  unexpectedly answered: {other:?}"),
    }
    let v = edges[0].call("read", Value::Int(0)).unwrap();
    println!(
        "edge-wan     admitted, degraded one band: {}",
        served_shape(&v)
    );
    blocker.join().unwrap();

    // Act 3: the fleet's own view, from the live exposition.
    println!("\n-- /metrics (qos_fleet_*) --");
    let mut http = sbq_http::HttpClient::connect(addr).unwrap();
    let resp = http.send(sbq_http::Request::get("/metrics")).unwrap();
    for line in String::from_utf8(resp.body).unwrap().lines() {
        if line.starts_with("qos_fleet") {
            println!("{line}");
        }
    }
    println!(
        "\nOne server, one quality file, {} tracked clients — each one measured,\n\
         banded, and (under overload) triaged individually.",
        server.fleet().unwrap().clients()
    );
}
