//! The remote-visualization pipeline (paper §IV-C.4, Fig. 10): a
//! bondserver feeds an ECho channel; the service portal subscribes and
//! serves SOAP clients that discover it via WSDL, install filters at
//! runtime, and pull frames as SVG or XML.
//!
//! ```sh
//! cargo run --example remote_visualization
//! ```

use sbq_echo::EchoBus;
use sbq_mdsim::{BondGraph, Molecule};
use sbq_model::Value;
use sbq_viz::{portal_service, ServicePortal};
use soap_binq::{SoapClient, WireEncoding};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // (4) The ECho bondserver: a thread integrating the molecule and
    // publishing a bond graph every few steps.
    let bus = EchoBus::new();
    bus.create_channel("bonds", BondGraph::type_desc())?;
    {
        let bus = bus.clone();
        std::thread::spawn(move || {
            let mut molecule = Molecule::branched_chain(150, 3);
            for _ in 0..200 {
                molecule.run(5);
                let g = BondGraph::capture(&molecule, 1.2);
                if bus.submit("bonds", g.to_value()).is_err() {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        });
    }

    // The portal sinks the channel and serves SOAP.
    let portal = ServicePortal::new(&bus, "bonds")?;
    std::thread::sleep(std::time::Duration::from_millis(100));
    let server = portal.serve("127.0.0.1:0".parse()?, WireEncoding::Pbio)?;
    println!("service portal on {}", server.addr());
    println!("metrics at http://{}/metrics", server.addr());

    // (1)/(2) The display client discovers the service.
    let svc = portal_service("x");
    let mut client = SoapClient::connect(server.addr(), &svc, WireEncoding::Pbio)?;
    let wsdl = client.call("get_wsdl", Value::Int(0))?;
    let parsed = sbq_wsdl::parse_wsdl(wsdl.as_str()?)?;
    println!(
        "discovered service {:?} with operations {:?}",
        parsed.name,
        parsed
            .operations
            .iter()
            .map(|o| o.name.as_str())
            .collect::<Vec<_>>()
    );

    // (3)/(5) Request frames with different filters and formats.
    for (filter, format) in [
        ("identity", "svg"),
        ("elements:C", "svg"),
        ("stride:2", "xml"),
        ("halfbox", "svg"),
    ] {
        let req = Value::struct_of(
            "frame_request",
            vec![
                ("filter", Value::Str(filter.into())),
                ("format", Value::Str(format.into())),
            ],
        );
        let t0 = std::time::Instant::now();
        let frame = client.call("get_frame", req)?;
        let dt = t0.elapsed();
        println!(
            "frame filter={filter:<12} format={format}: {:>6} bytes in {:?}",
            frame.as_str()?.len(),
            dt
        );
    }

    // Dynamically install a named filter, then use it.
    let inst = Value::struct_of(
        "filter_def",
        vec![
            ("name", Value::Str("carbon".into())),
            ("spec", Value::Str("elements:C".into())),
        ],
    );
    client.call("install_filter", inst)?;
    let req = Value::struct_of(
        "frame_request",
        vec![
            ("filter", Value::Str("carbon".into())),
            ("format", Value::Str("svg".into())),
        ],
    );
    let svg = client.call("get_frame", req)?;
    let path = std::env::temp_dir().join("sbq_molecule.svg");
    std::fs::write(&path, svg.as_str()?)?;
    println!("\nwrote a carbon-only frame to {}", path.display());
    Ok(())
}
