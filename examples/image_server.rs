//! The Skyserver-style imaging application (paper §IV-C.1): an image
//! server with continuous quality management. The client requests
//! edge-detected telescope frames; when it reports degraded RTT, the
//! server halves the resolution; when conditions recover, full frames
//! return.
//!
//! ```sh
//! cargo run --example image_server
//! ```

use sbq_imaging::{image_quality_file, install_resize_handlers, service, ImageStore};
use sbq_model::Value;
use sbq_qos::QualityManager;
use soap_binq::{ClientConfig, Registry, SoapClient, TraceConfig, WireEncoding};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Request tracing: keep 1 in 4 frames in the flight recorder (errors
    // always record); set before the server binds so the ring picks it up.
    Registry::default().set_trace_config(TraceConfig::new().sample_one_in(4));

    // Server: three synthetic star fields, quality threshold 100 ms.
    let store = ImageStore::with_starfields(3, 2024);
    let server = store.serve("127.0.0.1:0".parse()?, WireEncoding::Pbio, Some(100.0))?;
    println!("image server on {}", server.addr());
    println!("metrics at http://{}/metrics", server.addr());
    println!(
        "traces  at http://{}/trace.json (open in Perfetto)",
        server.addr()
    );

    // Client with its own quality manager (same policy file).
    let qm = QualityManager::new(image_quality_file(100.0));
    install_resize_handlers(qm.handlers());
    let svc = service::image_service("x");
    // Frames are large: stream request/response bodies ≥ 64 KiB as chunked
    // transfer so the framing layer never buffers a whole frame. Image
    // fetches are reads, so retrying through a garbled response is safe.
    let config = ClientConfig::default()
        .chunk_threshold(64 << 10)
        .idempotent(true);
    let mut client =
        SoapClient::connect_with(server.addr(), &svc, WireEncoding::Pbio, config)?.with_quality(qm);

    let request = |name: &str| {
        Value::struct_of(
            "image_request",
            vec![
                ("name", Value::Str(name.into())),
                ("operation", Value::Str("edge_detect".into())),
            ],
        )
    };

    println!("\nphase 1 — healthy network:");
    for i in 0..3 {
        let v = client.call("get_image", request(&format!("sky-{i}")))?;
        let img = service::value_to_image(&v).expect("well-formed image");
        println!(
            "  frame sky-{i}: {}x{} ({} KB) [{}]",
            img.width,
            img.height,
            img.byte_size() / 1024,
            client
                .stats()
                .last_message_type
                .as_deref()
                .unwrap_or("image_full"),
        );
    }

    println!("\nphase 2 — congestion reported (RTT 400 ms):");
    for _ in 0..3 {
        client
            .quality_mut()
            .unwrap()
            .observe_rtt(Duration::from_millis(400), Duration::ZERO);
    }
    for i in 0..3 {
        let v = client.call("get_image", request(&format!("sky-{i}")))?;
        let img = service::value_to_image(&v).expect("well-formed image");
        println!(
            "  frame sky-{i}: {}x{} ({} KB) [{}]",
            img.width,
            img.height,
            img.byte_size() / 1024,
            client
                .stats()
                .last_message_type
                .as_deref()
                .unwrap_or("image_full"),
        );
    }

    println!("\nphase 3 — recovery (loopback RTTs flow back in):");
    let mut frames = 0;
    loop {
        let v = client.call("get_image", request("sky-0"))?;
        let img = service::value_to_image(&v).expect("well-formed image");
        frames += 1;
        if img.width == 640 || frames > 60 {
            println!("  full resolution restored after {frames} frames");
            break;
        }
    }

    println!(
        "\nserver served {} requests, {} reduced",
        server.requests(),
        server.reduced_responses()
    );
    Ok(())
}
