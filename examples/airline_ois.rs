//! The airline operational information system (paper §IV-C.3, Table I):
//! a caterer pulls meal manifests over SOAP; the example also prints the
//! four Table-I encodings of one event side by side.
//!
//! ```sh
//! cargo run --example airline_ois
//! ```

use sbq_airline::{airline_service, catering_event_type, CateringEvent, Dataset, OisServer};
use sbq_model::Value;
use sbq_pbio::{plan, FormatDesc};
use soap_binq::{marshal, SoapClient, WireEncoding};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One Table-I event, encoded four ways.
    let ds = Dataset::generate(12, 42);
    let idx = ds
        .flights
        .iter()
        .position(|f| f.duration_min >= 90)
        .expect("generated dataset has a long-haul flight");
    let event = CateringEvent::build(&ds, idx, 0);
    let value = event.to_value();
    let ty = catering_event_type();
    let format = FormatDesc::from_type(
        &ty,
        sbq_pbio::format::FormatOptions {
            int_width: 4,
            ..Default::default()
        },
    )?;
    let xml = marshal::value_to_xml(&value, "catering_event");
    let pbio = plan::encode(&value, &format)?;
    let lz = sbq_lz::compress(xml.as_bytes());
    println!(
        "one catering event ({} meal lines) encoded:",
        event.meals.len()
    );
    println!("  SOAP XML        : {:>6} bytes", xml.len());
    println!("  SOAP-bin (PBIO) : {:>6} bytes", pbio.len());
    println!("  compressed XML  : {:>6} bytes", lz.len());
    println!("  (paper Table I:   3898 / 860 / 1264 bytes)");

    // Live service: list flights, pull manifests.
    let ois = OisServer::new(12, 42);
    let server = ois.serve("127.0.0.1:0".parse()?, WireEncoding::Pbio)?;
    println!("OIS server on {}", server.addr());
    println!("metrics at http://{}/metrics", server.addr());
    let svc = airline_service("x");
    let mut client = SoapClient::connect(server.addr(), &svc, WireEncoding::Pbio)?;

    let Value::List(flights) = client.call("list_flights", Value::Int(0))? else {
        panic!("expected a flight list");
    };
    println!("\n{} flights in the OIS", flights.len());

    let flight = flights[idx].as_str()?.to_string();
    println!("pulling catering manifests for {flight}:");
    for cart in 0..3 {
        let req = Value::struct_of(
            "catering_request",
            vec![("flight", Value::Str(flight.clone()))],
        );
        let v = client.call("get_catering", req)?;
        let e = CateringEvent::from_value(&v).expect("well-formed event");
        let special = e.meals.iter().filter(|m| m.special == 1).count();
        println!(
            "  cart {cart}: {} meals ({} special), {} -> {}, {} pax",
            e.meals.len(),
            special,
            e.origin,
            e.dest,
            e.passengers
        );
        if let Some(m) = e.meals.first() {
            println!(
                "    first line: seat {} pnr {} class {} meal {} x{}",
                m.seat, m.pnr, m.class as char, m.meal_code as char, m.qty
            );
        }
    }
    Ok(())
}
