//! The paper's quantitative claims, encoded as tests. Each test cites the
//! claim it checks; thresholds are set to the *shape* (who wins, rough
//! factors), not the authors' absolute 2004 numbers.

use sbq_model::{workload, TypeDesc, Value};
use sbq_netsim::LinkSpec;
use sbq_pbio::{format::FormatOptions, plan, FormatDesc, FormatServer, PbioEndpoint};
use soap_binq::marshal;
use std::sync::Arc;

fn paper_opts() -> FormatOptions {
    FormatOptions {
        int_width: 4,
        ..Default::default()
    }
}

/// §IV-B.e: "The XML parameters generated are about 4-5 times the size of
/// the corresponding PBIO messages."
#[test]
fn xml_is_4_to_5x_pbio_for_arrays() {
    let ty = TypeDesc::list_of(TypeDesc::Int);
    let f = FormatDesc::from_type(&ty, paper_opts()).unwrap();
    for n in [1000usize, 10_000, 100_000] {
        let v = workload::int_array(n, 2);
        let pbio = plan::encode(&v, &f).unwrap().len();
        let xml = marshal::value_to_xml(&v, "p").len();
        let ratio = xml as f64 / pbio as f64;
        assert!((3.5..6.0).contains(&ratio), "n={n}: ratio {ratio}");
    }
}

/// §IV-B.e: "The difference is even greater for the nested structure."
#[test]
fn struct_blowup_exceeds_array_blowup() {
    let aty = TypeDesc::list_of(TypeDesc::Int);
    let af = FormatDesc::from_type(&aty, paper_opts()).unwrap();
    let av = workload::int_array(5000, 1);
    let a_ratio =
        marshal::value_to_xml(&av, "p").len() as f64 / plan::encode(&av, &af).unwrap().len() as f64;

    let sty = workload::business_struct_type(8);
    let sf = FormatDesc::from_type(&sty, paper_opts()).unwrap();
    let sv = workload::business_struct(8, 1);
    let s_ratio =
        marshal::value_to_xml(&sv, "p").len() as f64 / plan::encode(&sv, &sf).unwrap().len() as f64;

    assert!(s_ratio > a_ratio, "struct {s_ratio} <= array {a_ratio}");
    assert!(s_ratio > 5.0, "struct blowup only {s_ratio}");
}

/// §IV-B.e: "Compressed XML is mostly the same size as, and sometimes
/// smaller than the equivalent PBIO data."
#[test]
fn compressed_xml_is_near_pbio_size() {
    let ty = TypeDesc::list_of(TypeDesc::Int);
    let f = FormatDesc::from_type(&ty, paper_opts()).unwrap();
    let v = workload::int_array(20_000, 5);
    let pbio = plan::encode(&v, &f).unwrap().len();
    let xml = marshal::value_to_xml(&v, "p");
    let lz = sbq_lz::compress(xml.as_bytes()).len();
    let ratio = lz as f64 / pbio as f64;
    assert!((0.5..2.0).contains(&ratio), "lz/pbio {ratio}");
}

/// §I: "message transmission times are improved by a factor of about 15
/// for 1MByte message sizes" — the wire-size factor drives transmission;
/// the CPU factor is where our modern hosts land near the paper's 15x.
#[test]
fn megabyte_messages_improve_substantially() {
    let ty = TypeDesc::list_of(TypeDesc::Int);
    let f = FormatDesc::from_type(&ty, paper_opts()).unwrap();
    let v = workload::int_array(262_144, 9); // 1 MiB of 4-byte ints
    let pbio = plan::encode(&v, &f).unwrap();
    let xml = marshal::value_to_xml(&v, "p");
    let link = LinkSpec::adsl();
    let t_xml = link.transfer_time(xml.len(), 1.0);
    let t_pbio = link.transfer_time(pbio.len(), 1.0);
    let factor = t_xml.as_secs_f64() / t_pbio.as_secs_f64();
    assert!(factor > 3.5, "transmission improvement only {factor}x");
}

/// §III-B.a: format registration happens once; later messages use the
/// cache. §IV-B.e: the first-message cost matters only for deep formats.
#[test]
fn registration_amortizes_and_grows_with_depth() {
    let server = Arc::new(FormatServer::new());
    let mut tx = PbioEndpoint::new(Arc::clone(&server));
    let ty = workload::business_struct_type(6);
    let f = FormatDesc::from_type(&ty, paper_opts()).unwrap();
    let v = workload::business_struct(6, 1);
    let first = tx.send(&v, &f).unwrap();
    let second = tx.send(&v, &f).unwrap();
    assert_eq!(first.len(), 2);
    assert_eq!(second.len(), 1);
    let reg_bytes = first[0].wire_len();
    let shallow_f =
        FormatDesc::from_type(&workload::business_struct_type(1), paper_opts()).unwrap();
    let shallow_reg = 9 + shallow_f.to_bytes().len();
    assert!(
        reg_bytes > 2 * shallow_reg,
        "deep {reg_bytes} vs shallow {shallow_reg}"
    );
}

/// §IV-A: Sun RPC beats SOAP-bin on nested structs but not dramatically
/// on large arrays — at the *encoding* level, XDR and PBIO are both
/// binary, so payload sizes must be comparable (XDR pads, PBIO doesn't).
#[test]
fn xdr_and_pbio_payloads_comparable() {
    let ty = workload::nested_struct_type(4);
    let v = workload::nested_struct(4, 4);
    let f = FormatDesc::from_type(&ty, FormatOptions::default()).unwrap();
    let pbio = plan::encode(&v, &f).unwrap().len();
    let xdr = sbq_xdr::encode(&v, &ty).unwrap().len();
    let ratio = xdr as f64 / pbio as f64;
    assert!((0.5..2.0).contains(&ratio), "xdr/pbio {ratio}");
}

/// Table I: the four encodings of a catering event keep the paper's size
/// ordering: SOAP >> compressed/PBIO; SOAP ≈ 4-5x SOAP-bin.
#[test]
fn airline_event_size_ordering() {
    use sbq_airline::{catering_event_type, CateringEvent, Dataset};
    let ds = Dataset::generate(10, 42);
    let idx = ds
        .flights
        .iter()
        .position(|f| f.duration_min >= 90)
        .unwrap();
    let value = CateringEvent::build(&ds, idx, 0).to_value();
    let ty = catering_event_type();
    let f = FormatDesc::from_type(&ty, paper_opts()).unwrap();
    let pbio = plan::encode(&value, &f).unwrap().len();
    let xml = marshal::value_to_xml(&value, "catering_event");
    let lz = sbq_lz::compress(xml.as_bytes()).len();
    assert!(xml.len() > 3 * pbio, "xml {} vs pbio {pbio}", xml.len());
    assert!(xml.len() > 3 * lz, "xml {} vs lz {lz}", xml.len());
    let ratio = xml.len() as f64 / pbio as f64;
    assert!((3.5..7.0).contains(&ratio), "soap/soap-bin ratio {ratio}");
}

/// §IV-B: variance of repeated marshalling runs is small (the paper
/// reports <1% variance; we allow generous slack for shared CI hosts but
/// require the same order of magnitude).
#[test]
fn marshalling_cost_is_stable() {
    let v = workload::int_array(10_000, 3);
    let times: Vec<f64> = (0..10)
        .map(|_| {
            let t0 = std::time::Instant::now();
            std::hint::black_box(marshal::value_to_xml(&v, "p"));
            t0.elapsed().as_secs_f64()
        })
        .collect();
    let min = times.iter().cloned().fold(f64::MAX, f64::min);
    let median = {
        let mut t = times.clone();
        t.sort_by(f64::total_cmp);
        t[t.len() / 2]
    };
    assert!(median < min * 10.0, "median {median} vs min {min}");
}

/// The quality layer's padding contract: whatever the wire carried, the
/// application always sees the full message layout (§III-B.b).
#[test]
fn quality_padding_contract_holds_for_every_band() {
    use sbq_qos::{QualityFile, QualityManager};
    let file =
        QualityFile::parse("attribute rtt\n0 10 - full\n10 20 - mid\n20 inf - min\n").unwrap();
    let full_ty = TypeDesc::struct_of(
        "m",
        vec![
            ("a", TypeDesc::Int),
            ("b", TypeDesc::list_of(TypeDesc::Float)),
            ("c", TypeDesc::Str),
        ],
    );
    let mut qm = QualityManager::new(file);
    qm.define_message_type(
        "mid",
        TypeDesc::struct_of("mid", vec![("a", TypeDesc::Int), ("c", TypeDesc::Str)]),
    );
    qm.define_message_type(
        "min",
        TypeDesc::struct_of("min", vec![("a", TypeDesc::Int)]),
    );
    let full = Value::struct_of(
        "m",
        vec![
            ("a", Value::Int(5)),
            ("b", Value::FloatArray(vec![1.0])),
            ("c", Value::Str("x".into())),
        ],
    );
    for rtt in [5.0, 15.0, 100.0] {
        qm.attributes().update_attribute("rtt", rtt);
        let p = qm.prepare(&full);
        let restored = qm.restore(&p.value, &full_ty);
        assert!(
            restored.conforms_to(&full_ty),
            "rtt={rtt}, type {}",
            p.message_type
        );
        assert_eq!(
            restored.as_struct().unwrap().field("a"),
            Some(&Value::Int(5)),
            "shared field survives at rtt={rtt}"
        );
    }
}
