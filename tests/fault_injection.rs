//! Fault injection: malformed requests, corrupt payloads, and protocol
//! abuse must produce faults — never panics, hangs, or wrong answers.

use sbq_http::{HttpClient, Request};
use sbq_model::{TypeDesc, Value};
use sbq_wsdl::ServiceDef;
use soap_binq::{SoapClient, SoapServerBuilder, WireEncoding};

fn echo_server(enc: WireEncoding) -> (soap_binq::SoapServer, ServiceDef) {
    let svc = ServiceDef::new("Echo", "urn:fi:echo", "x").with_operation(
        "echo",
        TypeDesc::list_of(TypeDesc::Int),
        TypeDesc::list_of(TypeDesc::Int),
    );
    let server = SoapServerBuilder::new(&svc, enc)
        .unwrap()
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();
    (server, svc)
}

#[test]
fn garbage_xml_body_gets_fault_response() {
    let (server, _svc) = echo_server(WireEncoding::Xml);
    let mut raw = HttpClient::connect(server.addr()).unwrap();
    for body in [
        &b"this is not xml"[..],
        b"<soap:Envelope>",
        b"<a><b></a></b>",
        b"",
        b"<soap:Envelope xmlns:soap=\"x\"><soap:Body></soap:Body></soap:Envelope>",
    ] {
        let resp = raw.post("/Echo", "text/xml", body.to_vec()).unwrap();
        assert_eq!(resp.status, 500, "body {body:?}");
        let text = String::from_utf8_lossy(&resp.body);
        assert!(text.contains("Fault"), "no fault envelope for {body:?}");
    }
    assert!(server.faults() >= 5);
}

#[test]
fn corrupt_pbio_body_gets_fault_response() {
    let (server, svc) = echo_server(WireEncoding::Pbio);

    // First, a healthy call to prove the server still works afterwards.
    let mut good = SoapClient::connect(server.addr(), &svc, WireEncoding::Pbio).unwrap();
    let v = Value::IntArray(vec![1, 2, 3]);
    assert_eq!(good.call("echo", v.clone()).unwrap(), v);

    let mut raw = HttpClient::connect(server.addr()).unwrap();
    for body in [
        &[0xffu8, 0, 0, 0, 0][..],             // bad message kind
        &[2u8, 1, 0, 0, 0, 99, 0, 0, 0][..],   // data message, absurd length
        &[][..],                               // empty
        &[2u8, 0x7f, 0, 0, 0, 0, 0, 0, 0][..], // unknown format id
    ] {
        let mut req = Request::post("/Echo", sbq_http::PBIO_CONTENT_TYPE, body.to_vec());
        req.headers
            .push(("X-Soap-Op".to_string(), "echo".to_string()));
        req.headers
            .push(("X-Pbio-Session".to_string(), "42".to_string()));
        let resp = raw.send(req).unwrap();
        assert_eq!(resp.status, 500, "body {body:?}");
        assert!(resp.header("x-soap-error").is_some());
    }

    // And the healthy client still works.
    assert_eq!(good.call("echo", v.clone()).unwrap(), v);
}

#[test]
fn truncated_compressed_body_gets_fault() {
    let (server, svc) = echo_server(WireEncoding::CompressedXml);
    let mut raw = HttpClient::connect(server.addr()).unwrap();
    let resp = raw
        .post("/Echo", "application/x-soap-lz", vec![9, 9, 9])
        .unwrap();
    assert_eq!(resp.status, 500);

    // Stack still healthy.
    let mut good = SoapClient::connect(server.addr(), &svc, WireEncoding::CompressedXml).unwrap();
    let v = Value::IntArray(vec![7]);
    assert_eq!(good.call("echo", v.clone()).unwrap(), v);
}

#[test]
fn missing_pbio_headers_rejected_cleanly() {
    let (server, _svc) = echo_server(WireEncoding::Pbio);
    let mut raw = HttpClient::connect(server.addr()).unwrap();
    // No X-Soap-Op header at all.
    let resp = raw
        .post("/Echo", sbq_http::PBIO_CONTENT_TYPE, vec![])
        .unwrap();
    assert_eq!(resp.status, 500);
    assert!(resp.header("x-soap-error").unwrap().contains("X-Soap-Op"));
}

#[test]
fn wrong_typed_arguments_fault_not_crash() {
    // Client encodes a string where the server expects an int array — the
    // server-side decode must reject it.
    let svc_lying = ServiceDef::new("Echo", "urn:fi:echo", "x").with_operation(
        "echo",
        TypeDesc::Str,
        TypeDesc::Str,
    );
    let (server, _svc) = echo_server(WireEncoding::Pbio);
    let mut liar = SoapClient::connect(server.addr(), &svc_lying, WireEncoding::Pbio).unwrap();
    let err = liar
        .call("echo", Value::Str("not an array".into()))
        .unwrap_err();
    assert!(matches!(err, soap_binq::SoapError::Fault { .. }), "{err}");
}

#[test]
fn xml_bomb_sized_inputs_bounded() {
    // A deeply nested hand-built XML document: parsing must terminate
    // with an error (unknown fields / depth mismatch), not recurse into
    // oblivion.
    let (server, _svc) = echo_server(WireEncoding::Xml);
    let mut raw = HttpClient::connect(server.addr()).unwrap();
    let mut body = String::from(
        "<soap:Envelope xmlns:soap=\"http://schemas.xmlsoap.org/soap/envelope/\"><soap:Body><echo>",
    );
    for _ in 0..5000 {
        body.push_str("<item>");
    }
    for _ in 0..5000 {
        body.push_str("</item>");
    }
    body.push_str("</echo></soap:Body></soap:Envelope>");
    let resp = raw.post("/Echo", "text/xml", body.into_bytes()).unwrap();
    assert_eq!(resp.status, 500);
}

#[test]
fn mismatched_content_type_rejected_clearly() {
    // An XML SOAP client hitting a PBIO endpoint (or vice versa) gets a
    // content-type fault, not a parse-garbage error.
    let (pbio_server, _) = echo_server(WireEncoding::Pbio);
    let mut raw = HttpClient::connect(pbio_server.addr()).unwrap();
    let resp = raw
        .post("/Echo", "text/xml; charset=utf-8", b"<x/>".to_vec())
        .unwrap();
    assert_eq!(resp.status, 500);
    assert!(
        resp.header("x-soap-error")
            .unwrap()
            .contains("content type"),
        "{:?}",
        resp.header("x-soap-error")
    );

    let (xml_server, _) = echo_server(WireEncoding::Xml);
    let mut raw = HttpClient::connect(xml_server.addr()).unwrap();
    let resp = raw
        .post(
            "/Echo",
            sbq_http::PBIO_CONTENT_TYPE,
            vec![2, 1, 0, 0, 0, 0, 0, 0, 0],
        )
        .unwrap();
    assert_eq!(resp.status, 500);
    assert!(String::from_utf8_lossy(&resp.body).contains("content type"));
}

#[test]
fn slow_loris_header_limit_enforced() {
    // A request whose header section exceeds the parser limit is cut off.
    let (server, _svc) = echo_server(WireEncoding::Xml);
    use std::io::Write;
    let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    write!(stream, "POST / HTTP/1.1\r\n").unwrap();
    let huge = format!("X-Pad: {}\r\n", "a".repeat(64 * 1024));
    // The server will stop reading once the limit trips; the write side
    // may or may not error depending on timing — both are fine, the
    // assertion is that the server never hangs or crashes.
    let _ = stream.write_all(huge.as_bytes());
    let _ = stream.write_all(b"\r\n");
    drop(stream);
    // Server still alive?
    let mut good = HttpClient::connect(server.addr()).unwrap();
    let resp = good.post("/x", "text/xml", b"<bad/>".to_vec()).unwrap();
    assert_eq!(resp.status, 500); // fault (bad envelope), but served
}
