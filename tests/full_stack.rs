//! Cross-crate integration: WSDL discovery → compilation → live calls
//! across heterogeneous hosts and every wire encoding.

use sbq_model::{workload, TypeDesc, Value};
use sbq_pbio::{format::FormatOptions, ByteOrder};
use sbq_wsdl::{compile, generate_rust_stubs, parse_wsdl, write_wsdl, ServiceDef};
use soap_binq::{SoapClient, SoapServerBuilder, WireEncoding};

fn sensor_service() -> ServiceDef {
    ServiceDef::new("SensorService", "urn:test:sensors", "http://127.0.0.1:0/s")
        .with_operation(
            "get_reading",
            TypeDesc::struct_of(
                "query",
                vec![("sensor_id", TypeDesc::Int), ("window", TypeDesc::Int)],
            ),
            TypeDesc::struct_of(
                "reading",
                vec![
                    ("sensor_id", TypeDesc::Int),
                    ("samples", TypeDesc::list_of(TypeDesc::Float)),
                    ("frame", TypeDesc::Bytes),
                ],
            ),
        )
        .with_operation("ping", TypeDesc::Int, TypeDesc::Int)
}

fn start_server(svc: &ServiceDef, enc: WireEncoding) -> soap_binq::SoapServer {
    SoapServerBuilder::new(svc, enc)
        .unwrap()
        .handle("get_reading", |req| {
            let s = req.as_struct().unwrap();
            let id = s.field("sensor_id").unwrap().as_int().unwrap();
            let window = s.field("window").unwrap().as_int().unwrap() as usize;
            Value::struct_of(
                "reading",
                vec![
                    ("sensor_id", Value::Int(id)),
                    (
                        "samples",
                        Value::FloatArray((0..window).map(|i| i as f64 * 0.5).collect()),
                    ),
                    ("frame", Value::Bytes((0..32u8).collect())),
                ],
            )
        })
        .handle("ping", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap()
}

#[test]
fn wsdl_discovery_drives_live_calls() {
    // The service definition makes a full trip through its textual WSDL
    // form before the client uses it — exactly the portal flow.
    let svc = sensor_service();
    let doc = write_wsdl(&svc).unwrap();
    let rediscovered = parse_wsdl(&doc).unwrap();
    assert_eq!(rediscovered, svc);

    let server = start_server(&rediscovered, WireEncoding::Pbio);
    let mut client = SoapClient::connect(server.addr(), &rediscovered, WireEncoding::Pbio).unwrap();
    let req = Value::struct_of(
        "query",
        vec![("sensor_id", Value::Int(7)), ("window", Value::Int(5))],
    );
    let v = client.call("get_reading", req).unwrap();
    let s = v.as_struct().unwrap();
    assert_eq!(s.field("sensor_id"), Some(&Value::Int(7)));
    assert_eq!(
        s.field("samples"),
        Some(&Value::FloatArray(vec![0.0, 0.5, 1.0, 1.5, 2.0]))
    );
    assert_eq!(s.field("frame").unwrap().as_bytes().unwrap().len(), 32);
}

#[test]
fn heterogeneous_client_converted_by_receiver() {
    // A big-endian, 4-byte-int client (the paper's SPARC) talks to a
    // native server: "receiver makes right" end to end over real sockets.
    let svc = sensor_service();
    let server = start_server(&svc, WireEncoding::Pbio);
    let sparc = FormatOptions {
        byte_order: ByteOrder::Big,
        int_width: 4,
        float_width: 8,
    };
    let compiled = compile(&svc, sparc).unwrap();
    let mut client = SoapClient::connect_compiled(
        server.addr(),
        compiled,
        WireEncoding::Pbio,
        soap_binq::ClientConfig::default(),
    )
    .unwrap();
    let req = Value::struct_of(
        "query",
        vec![("sensor_id", Value::Int(-3)), ("window", Value::Int(2))],
    );
    let v = client.call("get_reading", req).unwrap();
    assert_eq!(
        v.as_struct().unwrap().field("sensor_id"),
        Some(&Value::Int(-3))
    );
}

#[test]
fn all_encodings_serve_the_same_results() {
    let svc = sensor_service();
    let req = || {
        Value::struct_of(
            "query",
            vec![("sensor_id", Value::Int(1)), ("window", Value::Int(8))],
        )
    };
    let mut answers = Vec::new();
    for enc in [
        WireEncoding::Pbio,
        WireEncoding::Xml,
        WireEncoding::CompressedXml,
    ] {
        let server = start_server(&svc, enc);
        let mut client = SoapClient::connect(server.addr(), &svc, enc).unwrap();
        answers.push(client.call("get_reading", req()).unwrap());
    }
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[1], answers[2]);
}

#[test]
fn xml_interop_surface_round_trips() {
    let svc = sensor_service();
    let server = start_server(&svc, WireEncoding::Pbio);
    let mut client = SoapClient::connect(server.addr(), &svc, WireEncoding::Pbio).unwrap();
    let out = client
        .call_xml(
            "get_reading",
            "<q><sensor_id>9</sensor_id><window>1</window></q>",
        )
        .unwrap();
    assert!(out.contains("<sensor_id>9</sensor_id>"), "{out}");
    assert!(out.starts_with("<get_readingResult>"));
}

#[test]
fn generated_stub_source_matches_service() {
    let compiled = compile(&sensor_service(), FormatOptions::default()).unwrap();
    let src = generate_rust_stubs(&compiled);
    assert!(src.contains("pub struct SensorServiceClient"));
    assert!(src.contains("pub fn get_reading(&mut self, params: Value)"));
    assert!(src.contains("pub trait SensorServiceHandler"));
}

#[test]
fn large_payloads_cross_the_stack() {
    let svc = ServiceDef::new("Big", "urn:test:big", "x").with_operation(
        "echo",
        TypeDesc::list_of(TypeDesc::Float),
        TypeDesc::list_of(TypeDesc::Float),
    );
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();
    let mut client = SoapClient::connect(server.addr(), &svc, WireEncoding::Pbio).unwrap();
    // ~8 MB payload.
    let v = workload::float_array(1_000_000, 3);
    let bulk_before = soap_binq::Registry::global()
        .counter("pbio.plan.bulk_ops")
        .get();
    assert_eq!(client.call("echo", v.clone()).unwrap(), v);
    // The conversion plans on both sides of the call ran the payload
    // through bulk array kernels, not per-element decoding.
    let bulk_after = soap_binq::Registry::global()
        .counter("pbio.plan.bulk_ops")
        .get();
    assert!(
        bulk_after > bulk_before,
        "pbio.plan.bulk_ops did not advance ({bulk_before} -> {bulk_after})"
    );
}

#[test]
fn parallel_marshal_equals_serial_over_a_real_socket() {
    // The same multi-megabyte echo, decoded once on the serial kernel path
    // and once with the parallel threshold forced to 1 byte (every bulk
    // kernel splits across the marshal pool): the values that come out of
    // the socket must be identical, and the pool must actually have run
    // fork/join jobs on the parallel pass.
    let svc = ServiceDef::new("Big", "urn:test:big", "x")
        .with_operation(
            "echo_f",
            TypeDesc::list_of(TypeDesc::Float),
            TypeDesc::list_of(TypeDesc::Float),
        )
        .with_operation(
            "echo_i",
            TypeDesc::list_of(TypeDesc::Int),
            TypeDesc::list_of(TypeDesc::Int),
        );
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .handle("echo_f", |v| v)
        .handle("echo_i", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();
    // A byte-swapping client format so the decode path exercises the
    // bswap kernels, not just memcpy.
    let swapped = FormatOptions {
        byte_order: if cfg!(target_endian = "little") {
            ByteOrder::Big
        } else {
            ByteOrder::Little
        },
        int_width: 8,
        float_width: 8,
    };
    let compiled = compile(&svc, swapped).unwrap();
    let mut client = SoapClient::connect_compiled(
        server.addr(),
        compiled,
        WireEncoding::Pbio,
        soap_binq::ClientConfig::default(),
    )
    .unwrap();

    let floats = workload::float_array(700_000, 9); // ~5.6 MB
    let ints = workload::int_array(700_000, 9);

    sbq_pbio::set_parallel_threshold(usize::MAX);
    let serial_f = client.call("echo_f", floats.clone()).unwrap();
    let serial_i = client.call("echo_i", ints.clone()).unwrap();

    let pool = sbq_runtime::cpu_pool::marshal_pool();
    let jobs_before = pool
        .stats()
        .parallel_jobs
        .load(std::sync::atomic::Ordering::Relaxed);
    sbq_pbio::set_parallel_threshold(1);
    let parallel_f = client.call("echo_f", floats.clone()).unwrap();
    let parallel_i = client.call("echo_i", ints.clone()).unwrap();
    sbq_pbio::set_parallel_threshold(sbq_pbio::DEFAULT_PAR_THRESHOLD);

    assert_eq!(serial_f, floats);
    assert_eq!(serial_i, ints);
    assert_eq!(parallel_f, serial_f, "parallel f64 decode diverged");
    assert_eq!(parallel_i, serial_i, "parallel i64 decode diverged");
    let jobs_after = pool
        .stats()
        .parallel_jobs
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        jobs_after > jobs_before,
        "pool.parallel_jobs did not advance ({jobs_before} -> {jobs_after})"
    );
}

#[test]
fn tracing_stitches_calls_on_every_encoding() {
    // Tracing is encoding-agnostic: the XML and compressed-XML paths must
    // produce the same stitched span tree as PBIO, with the marshal spans
    // named for their encoding.
    for (enc, marshal) in [
        (WireEncoding::Xml, "marshal.xml"),
        (WireEncoding::CompressedXml, "marshal.lzxml"),
    ] {
        let reg = soap_binq::Registry::new();
        reg.set_trace_config(soap_binq::TraceConfig::new().sample_one_in(1));
        let svc = sensor_service();
        let server = SoapServerBuilder::new(&svc, enc)
            .unwrap()
            .transport(soap_binq::ServerConfig::default().telemetry(reg.clone()))
            .handle("ping", |v| v)
            .bind("127.0.0.1:0".parse().unwrap())
            .unwrap();
        let mut client = SoapClient::connect_with(
            server.addr(),
            &svc,
            enc,
            soap_binq::ClientConfig::default().telemetry(reg.clone()),
        )
        .unwrap();
        assert_eq!(client.call("ping", Value::Int(5)).unwrap(), Value::Int(5));

        // The server's request span records when its worker drops it,
        // which can trail the client seeing the response by a moment.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        let spans = loop {
            let spans = reg.tracer().snapshot();
            if spans.iter().any(|s| s.name == "server.request")
                || std::time::Instant::now() > deadline
            {
                break spans;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        };
        let root = spans
            .iter()
            .find(|s| s.name == "client.call")
            .unwrap_or_else(|| panic!("{enc:?}: no client root in {spans:#?}"));
        assert!(
            spans.iter().all(|s| s.trace_id == root.trace_id),
            "{enc:?}: one trace id"
        );
        let attempt = spans.iter().find(|s| s.name == "client.attempt").unwrap();
        let request = spans.iter().find(|s| s.name == "server.request").unwrap();
        assert_eq!(request.parent_id, attempt.span_id, "{enc:?}: stitched");
        for suffix in [".encode", ".decode"] {
            let name = format!("{marshal}{suffix}");
            assert!(
                spans.iter().any(|s| s.name == name),
                "{enc:?}: {name} missing from {spans:#?}"
            );
        }
        assert!(
            !spans.iter().any(|s| s.name == "pbio.handshake"),
            "{enc:?}: XML modes have no PBIO handshake"
        );
    }
}

#[test]
fn faults_cross_every_encoding() {
    for enc in [
        WireEncoding::Pbio,
        WireEncoding::Xml,
        WireEncoding::CompressedXml,
    ] {
        let svc = sensor_service();
        // Server without the ping handler registered.
        let server = SoapServerBuilder::new(&svc, enc)
            .unwrap()
            .handle("get_reading", |v| v)
            .bind("127.0.0.1:0".parse().unwrap())
            .unwrap();
        let mut client = SoapClient::connect(server.addr(), &svc, enc).unwrap();
        let err = client.call("ping", Value::Int(1)).unwrap_err();
        match err {
            soap_binq::SoapError::Fault { message, .. } => {
                assert!(message.contains("ping"), "{enc:?}: {message}")
            }
            other => panic!("{enc:?}: expected fault, got {other}"),
        }
    }
}
