//! Transport-runtime resilience across the full SOAP-binQ stack: an
//! event-driven reactor (epoll readiness loop + per-connection state
//! machines, handlers on a small CPU pool) holding thousands of
//! keep-alive clients, request-size and parse-error policing at the
//! HTTP layer, partial-I/O reassembly (short reads/writes, EINTR,
//! WouldBlock mid-header), retry-with-reconnect (including the PBIO
//! format-registration handshake replay and the Karn guard on the RTT
//! estimator), and graceful shutdown that drains in-flight work while
//! closing idle connections.

use sbq_http::{HttpClient, Request};
use sbq_model::{TypeDesc, Value};
use sbq_qos::{QualityFile, QualityManager};
use sbq_wsdl::ServiceDef;
use soap_binq::{
    ClientConfig, FaultAction, FaultSchedule, RetryPolicy, ServerConfig, SoapClient,
    SoapServerBuilder, WireEncoding,
};
use std::time::Duration;

fn echo_service() -> ServiceDef {
    ServiceDef::new("Echo", "urn:tr:echo", "x").with_operation(
        "echo",
        TypeDesc::list_of(TypeDesc::Int),
        TypeDesc::list_of(TypeDesc::Int),
    )
}

fn single_band_quality() -> QualityManager {
    QualityManager::new(QualityFile::parse("attribute rtt\n0 inf - full\n").unwrap())
}

/// Snapshots the registry's flight recorder, waiting briefly for `names`
/// to appear: server-side spans record when the worker drops them, which
/// can trail the client's view of the response.
fn wait_for_spans(reg: &soap_binq::Registry, names: &[&str]) -> Vec<sbq_telemetry::SpanEvent> {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let spans = reg.tracer().snapshot();
        let all_present = names.iter().all(|n| spans.iter().any(|s| s.name == *n));
        if all_present || std::time::Instant::now() > deadline {
            return spans;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn sixty_four_concurrent_clients_on_a_small_pool() {
    // Far more keep-alive connections than workers: the pool must
    // multiplex without losing, duplicating, or cross-wiring responses —
    // each client checks its own distinct payload, so a PBIO session mixup
    // between clients would be caught as a wrong echo.
    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(ServerConfig::default().worker_threads(4))
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();
    let addr = server.addr();

    let handles: Vec<_> = (0..64)
        .map(|i: i64| {
            let svc = svc.clone();
            std::thread::spawn(move || {
                let mut c = SoapClient::connect(addr, &svc, WireEncoding::Pbio).unwrap();
                for call in 0..5i64 {
                    let v = Value::IntArray(vec![i, call, i * 1000 + call]);
                    assert_eq!(
                        c.call("echo", v.clone()).unwrap(),
                        v,
                        "client {i} call {call}"
                    );
                }
                c.stats().calls
            })
        })
        .collect();

    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 64 * 5, "no lost or duplicated responses");
    assert_eq!(server.connections(), 64);
    assert!(server.requests() >= 64 * 5);
}

#[test]
fn malformed_and_oversized_requests_rejected_at_the_http_layer() {
    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(ServerConfig::default().max_body_bytes(4 * 1024))
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();

    // A request line that is not HTTP at all → 400 before any SOAP layer.
    use std::io::{Read, Write};
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"NONSENSE\r\n\r\n").unwrap();
    let mut reply = String::new();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    raw.read_to_string(&mut reply).ok();
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply:?}");

    // A body over the configured cap → 413, rejected on declared length.
    let mut http = HttpClient::connect(server.addr()).unwrap();
    let mut req = Request::post("/Echo", sbq_http::PBIO_CONTENT_TYPE, vec![0u8; 64 * 1024]);
    req.headers
        .push(("X-Soap-Op".to_string(), "echo".to_string()));
    let resp = http.send(req).unwrap();
    assert_eq!(resp.status, 413);

    // The server is still healthy for well-formed traffic.
    let mut good = SoapClient::connect(server.addr(), &svc, WireEncoding::Pbio).unwrap();
    let v = Value::IntArray(vec![1, 2, 3]);
    assert_eq!(good.call("echo", v.clone()).unwrap(), v);
}

#[test]
fn retry_survives_a_dropped_response_and_replays_the_handshake() {
    // The server drops its very first response on the floor (fault
    // injection). The client's retry layer must notice the dead
    // connection, reconnect — starting a fresh PBIO session whose format
    // registration replays — and complete the call. Per Karn's algorithm
    // the retried call must NOT feed the client RTT estimator.
    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(
            ServerConfig::default().faults(FaultSchedule::new().at(0, FaultAction::DropResponse)),
        )
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();

    // A dropped response is ambiguous (the server executed the call before
    // the fault swallowed the reply), so only idempotent calls may replay
    // through it.
    let config = ClientConfig::default()
        .call_timeout(Duration::from_millis(500))
        .idempotent(true)
        .retry_policy(
            RetryPolicy::default()
                .max_attempts(3)
                .base_backoff(Duration::from_millis(5)),
        );
    let mut client = SoapClient::connect_with(server.addr(), &svc, WireEncoding::Pbio, config)
        .unwrap()
        .with_quality(single_band_quality());

    let first_session = client.session();
    let v = Value::IntArray(vec![9, 8, 7]);
    assert_eq!(client.call_with_retry("echo", v.clone()).unwrap(), v);

    assert_eq!(client.stats().retries, 1, "exactly one retry");
    assert_eq!(client.stats().reconnects, 1, "reconnected once");
    assert_ne!(
        client.session(),
        first_session,
        "fresh PBIO session after reconnect"
    );
    // The server saw two sessions: each of them received a registration
    // message (handshake re-established), and the echoed value decoded
    // correctly under the new session's formats.
    assert_eq!(server.connections(), 2);

    let q = client.quality().unwrap();
    assert_eq!(
        q.estimator().samples(),
        0,
        "retried RTT never reaches the estimator"
    );
    assert_eq!(q.suppressed_samples(), 1, "the suppression was recorded");

    // A follow-up clean call does feed the estimator.
    assert_eq!(client.call_with_retry("echo", v.clone()).unwrap(), v);
    assert_eq!(client.quality().unwrap().estimator().samples(), 1);
}

#[test]
fn metrics_endpoint_reports_live_traffic_and_qos_bands() {
    // One shared telemetry registry wired into all three instrumented
    // layers: the HTTP transport (via ServerConfig), the SOAP client
    // (via ClientConfig), and the quality manager. After real traffic,
    // `GET /metrics` on the server must expose live per-method counters
    // and the QoS band/RTT metrics in well-formed exposition text.
    let reg = soap_binq::Registry::new();
    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(ServerConfig::default().telemetry(reg.clone()))
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();

    let quality = single_band_quality().telemetry(&reg);
    let mut client = SoapClient::connect_with(
        server.addr(),
        &svc,
        WireEncoding::Pbio,
        ClientConfig::default().telemetry(reg.clone()),
    )
    .unwrap()
    .with_quality(quality);

    let v = Value::IntArray(vec![4, 5, 6]);
    for _ in 0..3 {
        assert_eq!(client.call("echo", v.clone()).unwrap(), v);
    }

    let mut http = HttpClient::connect(server.addr()).unwrap();
    let resp = http.send(Request::get("/metrics")).unwrap();
    assert_eq!(resp.status, 200);
    let text = String::from_utf8(resp.body).unwrap();
    let samples = sbq_telemetry::expo::parse_text(&text).expect("well-formed exposition");
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.quantile.is_none())
            .unwrap_or_else(|| panic!("{name} missing from /metrics:\n{text}"))
            .value
    };

    // Transport saw the echo POSTs (plus the PBIO registration handshake).
    assert!(value("http_requests_post") >= 3.0, "{text}");
    assert!(value("http_status_2xx") >= 3.0, "{text}");
    // Client-side instrumentation shares the registry.
    assert!(value("client_calls") >= 3.0, "{text}");
    assert!(value("marshal_pbio_encode_count") >= 3.0, "{text}");
    // Quality management: every clean call fed an RTT sample, and the
    // selector pinned the (single) band — index 0 — on the gauge.
    assert!(value("qos_rtt_us_count") >= 3.0, "{text}");
    assert_eq!(value("qos_band"), 0.0, "{text}");

    // The JSON endpoint exposes the same registry.
    let resp = http.send(Request::get("/metrics.json")).unwrap();
    assert_eq!(resp.status, 200);
    let json = String::from_utf8(resp.body).unwrap();
    assert!(json.contains("\"qos.band\""), "{json}");
    assert!(json.contains("\"http.requests.post\""), "{json}");
}

#[test]
fn protocol_errors_are_not_retried() {
    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();
    let mut client = SoapClient::connect(server.addr(), &svc, WireEncoding::Pbio).unwrap();
    // Unknown operation is a protocol error: the retry loop must give up
    // immediately instead of hammering the server.
    let err = client
        .call_with_retry("no_such_op", Value::Int(1))
        .unwrap_err();
    assert!(!err.is_retryable());
    assert_eq!(client.stats().retries, 0);
}

#[test]
fn shutdown_drains_inflight_connections_and_joins_threads() {
    let svc = echo_service();
    let mut server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(ServerConfig::default().worker_threads(2))
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();
    let addr = server.addr();

    // Park several keep-alive connections with completed calls.
    let mut clients: Vec<SoapClient> = (0..6)
        .map(|i: i64| {
            let mut c = SoapClient::connect(addr, &svc, WireEncoding::Pbio).unwrap();
            let v = Value::IntArray(vec![i]);
            assert_eq!(c.call("echo", v.clone()).unwrap(), v);
            c
        })
        .collect();
    assert!(server.active_connections() > 0);

    // shutdown() must return (all threads joined) and leave nothing open.
    server.shutdown();
    assert_eq!(server.active_connections(), 0, "all connections drained");

    // New connects are refused or die immediately; parked clients see a
    // closed connection on their next call.
    let err = clients[0]
        .call("echo", Value::IntArray(vec![1]))
        .unwrap_err();
    assert!(
        err.is_retryable_when_idempotent(),
        "closed connection is replayable for idempotent calls"
    );
    drop(clients);
}

#[test]
fn garbled_response_does_not_replay_a_non_idempotent_call() {
    // The server executes the first call but its response is cut mid-body.
    // A non-idempotent client must NOT replay the request (the server-side
    // effect already happened): the error surfaces, the handler invocation
    // counter stays at 1, and the suppression is recorded.
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let svc = echo_service();
    let invocations = Arc::new(AtomicU64::new(0));
    let seen = Arc::clone(&invocations);
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(
            ServerConfig::default()
                .faults(FaultSchedule::new().at(0, FaultAction::CloseMidResponse)),
        )
        .handle("echo", move |v| {
            seen.fetch_add(1, Ordering::SeqCst);
            v
        })
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();

    let reg = soap_binq::Registry::new();
    let config = ClientConfig::default()
        .telemetry(reg.clone())
        .call_timeout(Duration::from_millis(500))
        .retry_policy(
            RetryPolicy::default()
                .max_attempts(3)
                .base_backoff(Duration::from_millis(5)),
        );
    let mut client =
        SoapClient::connect_with(server.addr(), &svc, WireEncoding::Pbio, config).unwrap();

    let v = Value::IntArray(vec![1, 2, 3]);
    let err = client.call_with_retry("echo", v).unwrap_err();
    assert!(
        matches!(
            &err,
            soap_binq::SoapError::Transport(soap_binq::HttpError::Protocol(_))
        ),
        "truncated response surfaces as a protocol-class transport error: {err}"
    );
    assert!(
        !err.is_retryable(),
        "ambiguous failure is not blind-retryable"
    );
    assert!(err.is_retryable_when_idempotent());
    assert_eq!(
        invocations.load(Ordering::SeqCst),
        1,
        "the call must not have been re-executed server-side"
    );
    assert_eq!(client.stats().retries, 0);
    assert_eq!(client.stats().retries_suppressed, 1);
    assert_eq!(reg.counter("client.retry.suppressed").get(), 1);
}

#[test]
fn idempotent_calls_replay_through_a_garbled_response() {
    // Same fault as above, but the call is marked idempotent: the retry
    // layer reconnects and replays, the call completes, and the handler
    // ran twice (which is fine — that is what idempotent means).
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let svc = echo_service();
    let invocations = Arc::new(AtomicU64::new(0));
    let seen = Arc::clone(&invocations);
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(
            ServerConfig::default()
                .faults(FaultSchedule::new().at(0, FaultAction::CloseMidResponse)),
        )
        .handle("echo", move |v| {
            seen.fetch_add(1, Ordering::SeqCst);
            v
        })
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();

    let config = ClientConfig::default()
        .call_timeout(Duration::from_millis(500))
        .retry_policy(
            RetryPolicy::default()
                .max_attempts(3)
                .base_backoff(Duration::from_millis(5)),
        );
    let mut client =
        SoapClient::connect_with(server.addr(), &svc, WireEncoding::Pbio, config).unwrap();

    let v = Value::IntArray(vec![4, 5, 6]);
    // Per-call override: the client default is non-idempotent.
    assert_eq!(
        client
            .call_with_retry_idempotent("echo", v.clone())
            .unwrap(),
        v
    );
    assert_eq!(
        invocations.load(Ordering::SeqCst),
        2,
        "the replay re-executed the handler"
    );
    assert_eq!(client.stats().retries, 1);
    assert_eq!(client.stats().retries_suppressed, 0);
}

#[test]
fn bad_content_length_cannot_desync_a_pipelined_connection() {
    // Regression for the Content-Length desync: a request declaring a
    // malformed length followed by pipelined bytes that look like a second
    // request. Lenient parsing (treating the bad length as 0) would answer
    // the smuggled "request" too; strict framing must answer exactly one
    // 400 and close the connection.
    use std::io::{Read, Write};

    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();

    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    raw.write_all(
        b"POST /Echo HTTP/1.1\r\nHost: x\r\nContent-Length: banana\r\n\r\n\
          GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n",
    )
    .unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reply = String::new();
    raw.read_to_string(&mut reply).ok();

    assert!(reply.starts_with("HTTP/1.1 400"), "{reply:?}");
    assert_eq!(
        reply.matches("HTTP/1.1").count(),
        1,
        "the pipelined bytes must not be parsed as a second request: {reply:?}"
    );
}

#[test]
fn chunked_round_trip_through_the_soap_stack() {
    // End-to-end chunked framing in both directions: a client above its
    // chunk threshold streams the request chunked; the server parses it,
    // echoes, and streams the response chunked under its own policy.
    let reg = soap_binq::Registry::new();
    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(
            ServerConfig::default()
                .telemetry(reg.clone())
                .chunk_threshold(4 * 1024),
        )
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();

    let config = ClientConfig::default().chunk_threshold(4 * 1024);
    let mut client =
        SoapClient::connect_with(server.addr(), &svc, WireEncoding::Pbio, config).unwrap();

    // ~160 KiB of payload: far above both thresholds.
    let big = Value::IntArray((0..20_000i64).collect());
    assert_eq!(client.call("echo", big.clone()).unwrap(), big);
    assert!(
        reg.counter("http.chunked.rx").get() >= 1,
        "request arrived chunked"
    );
    assert!(
        reg.counter("http.chunked.tx").get() >= 1,
        "response left chunked"
    );

    // A small call on the same connection drops back to Content-Length
    // framing and still round-trips.
    let small = Value::IntArray(vec![7]);
    assert_eq!(client.call("echo", small.clone()).unwrap(), small);
}

#[test]
fn truncated_chunked_response_surfaces_as_protocol_error() {
    // Fault injection cuts a chunked response mid-chunk; the client must
    // classify it as a protocol error (ambiguous — not blind-retryable).
    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(
            ServerConfig::default()
                .chunk_threshold(1024)
                .faults(FaultSchedule::new().at(0, FaultAction::CloseMidResponse)),
        )
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();

    let mut client = SoapClient::connect_with(
        server.addr(),
        &svc,
        WireEncoding::Pbio,
        ClientConfig::default().call_timeout(Duration::from_millis(500)),
    )
    .unwrap();

    // ~80 KiB echo: the chunked response is cut halfway through its body.
    let big = Value::IntArray((0..10_000i64).collect());
    let err = client.call("echo", big).unwrap_err();
    assert!(
        matches!(
            &err,
            soap_binq::SoapError::Transport(soap_binq::HttpError::Protocol(_))
        ),
        "truncated chunk is a protocol error: {err}"
    );
    assert!(!err.is_retryable());
    assert!(err.is_retryable_when_idempotent());
}

#[test]
fn one_call_yields_one_stitched_cross_process_trace() {
    // The tracing acceptance path: client and server share one registry
    // (and so one flight recorder) with sampling at 1/1. A single call
    // must produce ONE span tree under ONE trace id, stitched across the
    // client/server boundary by the X-SBQ-Trace header: the client root
    // and attempt, the server request with its queue-wait/read/handler/
    // write phases, the marshal spans on both ends, and the QoS band
    // annotation from the server-side quality manager.
    let reg = soap_binq::Registry::new();
    reg.set_trace_config(soap_binq::TraceConfig::new().sample_one_in(1));
    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(ServerConfig::default().telemetry(reg.clone()))
        .with_quality(single_band_quality().telemetry(&reg))
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();
    let mut client = SoapClient::connect_with(
        server.addr(),
        &svc,
        WireEncoding::Pbio,
        ClientConfig::default().telemetry(reg.clone()),
    )
    .unwrap();

    let v = Value::IntArray(vec![1, 2, 3]);
    assert_eq!(client.call("echo", v.clone()).unwrap(), v);

    // The server's request/write spans record when the worker drops them,
    // which can trail the client seeing the response by a moment.
    let spans = wait_for_spans(&reg, &["server.request", "server.write"]);
    let find = |name: &str| {
        spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("span {name} missing; got {spans:#?}"))
    };
    let root = find("client.call");
    assert_eq!(root.parent_id, 0, "client root has no parent");
    assert!(
        spans.iter().all(|s| s.trace_id == root.trace_id),
        "every span of the call shares one trace id: {spans:#?}"
    );
    let attempt = find("client.attempt");
    assert_eq!(attempt.parent_id, root.span_id);
    // The server adopted the attempt's context from X-SBQ-Trace — one
    // trace id across the client/server boundary, parented correctly.
    let request = find("server.request");
    assert_eq!(request.parent_id, attempt.span_id, "cross-process stitch");
    for phase in ["server.queue_wait", "server.read", "server.write"] {
        assert_eq!(find(phase).parent_id, request.span_id, "{phase}");
    }
    let handler = find("server.handler");
    assert_eq!(handler.parent_id, request.span_id);
    // Marshalling on both ends: the client's encode/decode parent on the
    // attempt, the server's on the handler (via the thread-local bridge).
    let marshal_parents: Vec<u64> = spans
        .iter()
        .filter(|s| s.name == "marshal.pbio.encode" || s.name == "marshal.pbio.decode")
        .map(|s| s.parent_id)
        .collect();
    assert_eq!(marshal_parents.len(), 4, "encode+decode on each end");
    assert_eq!(
        marshal_parents
            .iter()
            .filter(|&&p| p == attempt.span_id)
            .count(),
        2,
        "client-side marshal spans"
    );
    assert_eq!(
        marshal_parents
            .iter()
            .filter(|&&p| p == handler.span_id)
            .count(),
        2,
        "server-side marshal spans"
    );
    // Quality management annotated the handler's subtree with its band.
    let qos = find("qos.prepare");
    assert_eq!(qos.parent_id, handler.span_id);
    assert!(
        qos.tags.iter().any(|(k, v)| k == "band" && v == "0"),
        "active band tagged: {:?}",
        qos.tags
    );
    // The response carried the server's span id back to the client, which
    // tagged its attempt with it. The tag is the zero-padded hex form
    // `add_tag_hex` writes, so compare against `{:016x}` — an unpadded
    // compare fails for the 1-in-16 span ids with a leading zero nibble.
    assert!(
        attempt
            .tags
            .iter()
            .any(|(k, v)| k == "server_span" && *v == format!("{:016x}", request.span_id)),
        "attempt links to the server span: {:?}",
        attempt.tags
    );
    // The first call on a PBIO connection carries the format handshake.
    assert!(
        spans.iter().any(|s| s.name == "pbio.handshake"),
        "{spans:#?}"
    );

    // The same tree is exported live at GET /trace.json as Chrome trace
    // JSON, well-formed and carrying the trace id.
    let mut http = HttpClient::connect(server.addr()).unwrap();
    let resp = http.send(Request::get("/trace.json")).unwrap();
    assert_eq!(resp.status, 200);
    let json = String::from_utf8(resp.body).unwrap();
    sbq_telemetry::expo::validate_json(&json).expect("well-formed Chrome trace JSON");
    assert!(json.contains("\"traceEvents\""), "{json}");
    assert!(
        json.contains(&format!("{:032x}", root.trace_id)),
        "exported events carry the trace id"
    );
}

#[test]
fn retry_across_reconnect_stays_one_trace() {
    // A dropped response forces a reconnect + replay. Both attempts (and
    // the backoff and reconnect between them) must appear as siblings
    // under ONE client root — same trace id, distinct span ids — because
    // retried calls are exactly the ones worth inspecting as a unit.
    let reg = soap_binq::Registry::new();
    reg.set_trace_config(soap_binq::TraceConfig::new().sample_one_in(1));
    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(
            ServerConfig::default()
                .telemetry(reg.clone())
                .faults(FaultSchedule::new().at(0, FaultAction::DropResponse)),
        )
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();

    let config = ClientConfig::default()
        .telemetry(reg.clone())
        .call_timeout(Duration::from_millis(500))
        .idempotent(true)
        .retry_policy(
            RetryPolicy::default()
                .max_attempts(3)
                .base_backoff(Duration::from_millis(5)),
        );
    let mut client =
        SoapClient::connect_with(server.addr(), &svc, WireEncoding::Pbio, config).unwrap();

    let v = Value::IntArray(vec![9, 8, 7]);
    assert_eq!(client.call_with_retry("echo", v.clone()).unwrap(), v);
    assert_eq!(client.stats().retries, 1);

    let spans = reg.tracer().snapshot();
    let root = spans
        .iter()
        .find(|s| s.name == "client.call")
        .expect("client root span");
    let attempts: Vec<_> = spans
        .iter()
        .filter(|s| s.name == "client.attempt")
        .collect();
    assert_eq!(attempts.len(), 2, "both attempts recorded: {spans:#?}");
    assert_ne!(
        attempts[0].span_id, attempts[1].span_id,
        "attempts are distinct spans"
    );
    for a in &attempts {
        assert_eq!(a.trace_id, root.trace_id, "one trace id across the retry");
        assert_eq!(a.parent_id, root.span_id, "attempts are siblings");
    }
    for name in ["client.backoff", "client.reconnect"] {
        let s = spans
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("{name} missing: {spans:#?}"));
        assert_eq!(s.trace_id, root.trace_id);
        assert_eq!(s.parent_id, root.span_id);
    }
    // The failed first attempt is marked, the replay is tagged as a retry.
    assert!(attempts[0].error, "first attempt errored: {attempts:#?}");
    assert!(
        attempts[1]
            .tags
            .iter()
            .any(|(k, v)| k == "retry" && v == "1"),
        "{attempts:#?}"
    );
}

#[test]
fn disabled_registry_records_no_spans_for_live_traffic() {
    // Tracing must be free when off: with both ends on a disabled
    // registry, real traffic writes nothing into any flight recorder and
    // /trace.json stays an empty (but valid) export.
    let reg = soap_binq::Registry::disabled();
    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(ServerConfig::default().telemetry(reg.clone()))
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();
    let mut client = SoapClient::connect_with(
        server.addr(),
        &svc,
        WireEncoding::Pbio,
        ClientConfig::default().telemetry(reg.clone()),
    )
    .unwrap();
    let v = Value::IntArray(vec![1]);
    for _ in 0..3 {
        assert_eq!(client.call("echo", v.clone()).unwrap(), v);
    }
    assert!(!reg.tracer().is_enabled());
    assert_eq!(reg.tracer().recorded_total(), 0, "zero ring writes");
    let mut http = HttpClient::connect(server.addr()).unwrap();
    let resp = http.send(Request::get("/trace.json")).unwrap();
    assert_eq!(resp.status, 200);
    let json = String::from_utf8(resp.body).unwrap();
    sbq_telemetry::expo::validate_json(&json).expect("still valid JSON");
    assert!(json.contains("\"traceEvents\":[]"), "{json}");
}

#[test]
fn huge_streamed_body_uses_bounded_framing_buffers() {
    // A 64 MiB upload streamed as 256 KiB chunks: the framing layer must
    // never materialize more than one chunk at a time. The peak framing
    // buffer gauge (process-wide high-water mark across line buffers, head
    // buffers, and chunk reads/writes) proves it stays under the chunk
    // size — not under 64 MiB.
    use sbq_http::{ClientConfig as HttpClientConfig, HttpClient, HttpServer, ServerConfig};

    const CHUNK: usize = 256 * 1024;
    const BODY: usize = 64 * 1024 * 1024;

    let server = HttpServer::bind_with(
        "127.0.0.1:0".parse().unwrap(),
        ServerConfig::default().max_body_bytes(BODY + 1024),
        |req: &Request| {
            // Answer with a tiny digest so the response side cannot hide an
            // unbounded buffer either.
            let sum: u64 = req.body.iter().map(|&b| b as u64).sum();
            let digest = format!("{}:{sum}", req.body.len());
            sbq_http::Response::ok("text/plain", digest.into_bytes())
        },
    )
    .unwrap();

    let config = HttpClientConfig::default()
        .chunk_threshold(1024)
        .chunk_size(CHUNK)
        .read_timeout(Duration::from_secs(60))
        .write_timeout(Duration::from_secs(60));
    let mut client = HttpClient::connect_with(server.addr(), &config).unwrap();

    let body: Vec<u8> = (0..BODY).map(|i| (i % 251) as u8).collect();
    let expected_sum: u64 = body.iter().map(|&b| b as u64).sum();

    sbq_http::reset_peak_framing_buffer();
    let resp = client
        .send(Request::post("/upload", "application/octet-stream", body))
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        String::from_utf8(resp.body).unwrap(),
        format!("{BODY}:{expected_sum}"),
        "the whole 64 MiB body arrived intact"
    );

    let peak = sbq_http::peak_framing_buffer();
    assert!(
        peak <= CHUNK,
        "framing buffers stayed within one chunk: peak {peak} bytes > {CHUNK}"
    );
    assert!(peak > 0, "the instrumentation actually recorded");
}

#[test]
fn steady_state_calls_run_the_body_path_entirely_from_the_pool() {
    // The zero-copy hot path's end state: once the buffer pool is warm,
    // every request/response body on both sides of a call is served from
    // recycled buffers — the pool records hits but no new misses, which
    // means the steady-state body path performs zero allocations.
    let pool = sbq_runtime::BufferPool::new();
    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(
            ServerConfig::default()
                .worker_threads(2)
                .buffer_pool(pool.clone()),
        )
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();
    let mut client = SoapClient::connect_with(
        server.addr(),
        &svc,
        WireEncoding::Pbio,
        ClientConfig::default().buffer_pool(pool.clone()),
    )
    .unwrap();

    let payload = Value::IntArray((0..256).collect());

    // Warm-up: first calls miss the pool (and the first PBIO call carries
    // the format-registration handshake, which sizes buffers differently).
    for _ in 0..3 {
        assert_eq!(client.call("echo", payload.clone()).unwrap(), payload);
    }
    let warm = pool.stats();
    assert!(warm.misses > 0, "cold calls populate the pool");

    for _ in 0..20 {
        assert_eq!(client.call("echo", payload.clone()).unwrap(), payload);
    }
    let after = pool.stats();
    assert_eq!(
        after.misses, warm.misses,
        "steady-state calls allocated new body buffers (pool misses grew \
         from {} to {})",
        warm.misses, after.misses
    );
    assert!(
        after.hits > warm.hits,
        "steady-state calls did not draw from the pool (hits {} -> {})",
        warm.hits,
        after.hits
    );
}

fn count_process_threads() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

#[test]
fn shaped_partial_io_round_trips_through_the_soap_stack() {
    // Worst-case partial I/O: the server reads and writes ONE byte per
    // syscall and every third I/O op is interrupted with EINTR first.
    // The reactor's state machines must reassemble requests across
    // arbitrarily many readiness events and dribble responses out without
    // corrupting PBIO framing; the client sees ordinary intact replies.
    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(
            ServerConfig::default().worker_threads(1).faults(
                FaultSchedule::new()
                    .short_reads(1)
                    .short_writes(1)
                    .interrupt_every(3),
            ),
        )
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();

    let mut client = SoapClient::connect(server.addr(), &svc, WireEncoding::Pbio).unwrap();
    for call in 0..3i64 {
        let v = Value::IntArray((0..32).map(|i| i * 7 + call).collect());
        assert_eq!(client.call("echo", v.clone()).unwrap(), v, "call {call}");
    }
    assert_eq!(server.connections(), 1, "keep-alive survived the shaping");
}

#[test]
fn request_head_dribbled_across_many_events_is_reassembled() {
    // A client that stalls mid-header: each fragment arrives in its own
    // readiness event with a genuine WouldBlock in between, so the
    // connection parks in ReadHead with a partial buffer and resumes when
    // the next bytes land. A thread-per-connection server gets this for
    // free from blocking reads; the state machine must earn it.
    use std::io::{Read, Write};

    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();

    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    raw.set_nodelay(true).unwrap();
    let head = b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
    // Split inside the request line, inside a header name, and inside the
    // terminating CRLFCRLF — the nastiest places to park.
    for frag in [&head[..9], &head[9..27], &head[27..52], &head[52..]] {
        raw.write_all(frag).unwrap();
        raw.flush().unwrap();
        std::thread::sleep(Duration::from_millis(20));
    }
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut reply = Vec::new();
    raw.read_to_end(&mut reply).unwrap();
    let reply = String::from_utf8_lossy(&reply);
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply:?}");
    assert!(
        reply.contains("http_connections_open"),
        "metrics body arrived intact"
    );
}

#[test]
fn a_thousand_idle_connections_hold_no_extra_threads() {
    // The c10k claim in miniature: park ~1000 keep-alive connections on a
    // server whose CPU pool has two threads. Every connection is just a
    // registered fd plus a reactor timer — the process thread count must
    // not move, and the gauges must account for every parked socket.
    sbq_runtime::raise_nofile_limit(8192);

    const CONNS: usize = 1000;
    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(
            ServerConfig::default()
                .worker_threads(2)
                .keep_alive_timeout(Duration::from_secs(120)),
        )
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();
    let addr = server.addr();

    let threads_before = count_process_threads();
    let mut parked: Vec<std::net::TcpStream> = Vec::with_capacity(CONNS);
    for _ in 0..CONNS {
        parked.push(std::net::TcpStream::connect(addr).unwrap());
    }

    // Accepts happen on the reactor thread; poll the gauges until it has
    // drained the backlog.
    let mut open = 0.0;
    let mut idle = 0.0;
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut metrics_client = HttpClient::connect(addr).unwrap();
    while std::time::Instant::now() < deadline {
        let resp = metrics_client.send(Request::get("/metrics")).unwrap();
        let text = String::from_utf8(resp.body).unwrap();
        let samples = sbq_telemetry::expo::parse_text(&text).expect("exposition parses");
        let get = |n: &str| {
            samples
                .iter()
                .find(|s| s.name == n && s.quantile.is_none())
                .map(|s| s.value)
                .unwrap_or(0.0)
        };
        open = get("http_connections_open");
        idle = get("http_connections_idle");
        if open >= (CONNS + 1) as f64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        open >= (CONNS + 1) as f64,
        "expected >= {} open connections, metrics report {open}",
        CONNS + 1
    );
    assert!(
        idle >= CONNS as f64,
        "parked connections should count as idle, metrics report {idle}"
    );

    // Other tests in this binary may start servers concurrently, so allow
    // a little slack — the point is that 1000 connections add ~0 threads,
    // not ~1000.
    let threads_after = count_process_threads();
    assert!(
        threads_after <= threads_before + 8,
        "thread count grew with connections: {threads_before} -> {threads_after}"
    );

    drop(parked);
    drop(metrics_client);
    drop(server);
}

#[test]
fn graceful_shutdown_drains_an_inflight_handler() {
    // shutdown() while a handler is mid-flight: the listener must stop,
    // idle connections close immediately, but the in-flight response is
    // still written before the event loop exits — the caller gets its
    // answer, not a reset.
    let svc = echo_service();
    let mut server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(ServerConfig::default().worker_threads(1))
        .handle("echo", |v| {
            std::thread::sleep(Duration::from_millis(150));
            v
        })
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();
    let addr = server.addr();

    // An idle keep-alive connection that shutdown should close outright.
    let mut idle_client = SoapClient::connect(addr, &svc, WireEncoding::Pbio).unwrap();
    let warm = Value::IntArray(vec![0]);
    assert_eq!(idle_client.call("echo", warm.clone()).unwrap(), warm);

    let inflight = {
        let svc = svc.clone();
        std::thread::spawn(move || {
            let mut c = SoapClient::connect(addr, &svc, WireEncoding::Pbio).unwrap();
            let v = Value::IntArray(vec![1, 2, 3]);
            c.call("echo", v.clone()).map(|got| got == v)
        })
    };
    // Let the call reach the handler's sleep before pulling the plug.
    std::thread::sleep(Duration::from_millis(60));
    server.shutdown();

    assert_eq!(server.active_connections(), 0, "everything drained");
    match inflight.join().unwrap() {
        Ok(true) => {}
        other => panic!("in-flight call did not complete through shutdown: {other:?}"),
    }
    let err = idle_client.call("echo", warm).unwrap_err();
    assert!(
        err.is_retryable_when_idempotent(),
        "idle connection was closed by shutdown"
    );
}
