//! Transport-runtime resilience across the full SOAP-binQ stack: a fixed
//! worker pool serving many concurrent keep-alive clients, request-size
//! and parse-error policing at the HTTP layer, retry-with-reconnect
//! (including the PBIO format-registration handshake replay and the Karn
//! guard on the RTT estimator), and clean shutdown that drains in-flight
//! connections.

use sbq_http::{HttpClient, Request};
use sbq_model::{TypeDesc, Value};
use sbq_qos::{QualityFile, QualityManager};
use sbq_wsdl::ServiceDef;
use soap_binq::{
    ClientConfig, FaultAction, FaultSchedule, RetryPolicy, ServerConfig, SoapClient,
    SoapServerBuilder, WireEncoding,
};
use std::time::Duration;

fn echo_service() -> ServiceDef {
    ServiceDef::new("Echo", "urn:tr:echo", "x").with_operation(
        "echo",
        TypeDesc::list_of(TypeDesc::Int),
        TypeDesc::list_of(TypeDesc::Int),
    )
}

fn single_band_quality() -> QualityManager {
    QualityManager::new(QualityFile::parse("attribute rtt\n0 inf - full\n").unwrap())
}

#[test]
fn sixty_four_concurrent_clients_on_a_small_pool() {
    // Far more keep-alive connections than workers: the pool must
    // multiplex without losing, duplicating, or cross-wiring responses —
    // each client checks its own distinct payload, so a PBIO session mixup
    // between clients would be caught as a wrong echo.
    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(ServerConfig::default().worker_threads(4))
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();
    let addr = server.addr();

    let handles: Vec<_> = (0..64)
        .map(|i: i64| {
            let svc = svc.clone();
            std::thread::spawn(move || {
                let mut c = SoapClient::connect(addr, &svc, WireEncoding::Pbio).unwrap();
                for call in 0..5i64 {
                    let v = Value::IntArray(vec![i, call, i * 1000 + call]);
                    assert_eq!(
                        c.call("echo", v.clone()).unwrap(),
                        v,
                        "client {i} call {call}"
                    );
                }
                c.stats().calls
            })
        })
        .collect();

    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 64 * 5, "no lost or duplicated responses");
    assert_eq!(server.connections(), 64);
    assert!(server.requests() >= 64 * 5);
}

#[test]
fn malformed_and_oversized_requests_rejected_at_the_http_layer() {
    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(ServerConfig::default().max_body_bytes(4 * 1024))
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();

    // A request line that is not HTTP at all → 400 before any SOAP layer.
    use std::io::{Read, Write};
    let mut raw = std::net::TcpStream::connect(server.addr()).unwrap();
    raw.write_all(b"NONSENSE\r\n\r\n").unwrap();
    let mut reply = String::new();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    raw.read_to_string(&mut reply).ok();
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply:?}");

    // A body over the configured cap → 413, rejected on declared length.
    let mut http = HttpClient::connect(server.addr()).unwrap();
    let mut req = Request::post("/Echo", sbq_http::PBIO_CONTENT_TYPE, vec![0u8; 64 * 1024]);
    req.headers
        .push(("X-Soap-Op".to_string(), "echo".to_string()));
    let resp = http.send(req).unwrap();
    assert_eq!(resp.status, 413);

    // The server is still healthy for well-formed traffic.
    let mut good = SoapClient::connect(server.addr(), &svc, WireEncoding::Pbio).unwrap();
    let v = Value::IntArray(vec![1, 2, 3]);
    assert_eq!(good.call("echo", v.clone()).unwrap(), v);
}

#[test]
fn retry_survives_a_dropped_response_and_replays_the_handshake() {
    // The server drops its very first response on the floor (fault
    // injection). The client's retry layer must notice the dead
    // connection, reconnect — starting a fresh PBIO session whose format
    // registration replays — and complete the call. Per Karn's algorithm
    // the retried call must NOT feed the client RTT estimator.
    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(
            ServerConfig::default().faults(FaultSchedule::new().at(0, FaultAction::DropResponse)),
        )
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();

    let config = ClientConfig::default()
        .call_timeout(Duration::from_millis(500))
        .retry_policy(
            RetryPolicy::default()
                .max_attempts(3)
                .base_backoff(Duration::from_millis(5)),
        );
    let mut client = SoapClient::connect_with(server.addr(), &svc, WireEncoding::Pbio, config)
        .unwrap()
        .with_quality(single_band_quality());

    let first_session = client.session();
    let v = Value::IntArray(vec![9, 8, 7]);
    assert_eq!(client.call_with_retry("echo", v.clone()).unwrap(), v);

    assert_eq!(client.stats().retries, 1, "exactly one retry");
    assert_eq!(client.stats().reconnects, 1, "reconnected once");
    assert_ne!(
        client.session(),
        first_session,
        "fresh PBIO session after reconnect"
    );
    // The server saw two sessions: each of them received a registration
    // message (handshake re-established), and the echoed value decoded
    // correctly under the new session's formats.
    assert_eq!(server.connections(), 2);

    let q = client.quality().unwrap();
    assert_eq!(
        q.estimator().samples(),
        0,
        "retried RTT never reaches the estimator"
    );
    assert_eq!(q.suppressed_samples(), 1, "the suppression was recorded");

    // A follow-up clean call does feed the estimator.
    assert_eq!(client.call_with_retry("echo", v.clone()).unwrap(), v);
    assert_eq!(client.quality().unwrap().estimator().samples(), 1);
}

#[test]
fn metrics_endpoint_reports_live_traffic_and_qos_bands() {
    // One shared telemetry registry wired into all three instrumented
    // layers: the HTTP transport (via ServerConfig), the SOAP client
    // (via ClientConfig), and the quality manager. After real traffic,
    // `GET /metrics` on the server must expose live per-method counters
    // and the QoS band/RTT metrics in well-formed exposition text.
    let reg = soap_binq::Registry::new();
    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(ServerConfig::default().telemetry(reg.clone()))
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();

    let quality = single_band_quality().telemetry(&reg);
    let mut client = SoapClient::connect_with(
        server.addr(),
        &svc,
        WireEncoding::Pbio,
        ClientConfig::default().telemetry(reg.clone()),
    )
    .unwrap()
    .with_quality(quality);

    let v = Value::IntArray(vec![4, 5, 6]);
    for _ in 0..3 {
        assert_eq!(client.call("echo", v.clone()).unwrap(), v);
    }

    let mut http = HttpClient::connect(server.addr()).unwrap();
    let resp = http.send(Request::get("/metrics")).unwrap();
    assert_eq!(resp.status, 200);
    let text = String::from_utf8(resp.body).unwrap();
    let samples = sbq_telemetry::expo::parse_text(&text).expect("well-formed exposition");
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name && s.quantile.is_none())
            .unwrap_or_else(|| panic!("{name} missing from /metrics:\n{text}"))
            .value
    };

    // Transport saw the echo POSTs (plus the PBIO registration handshake).
    assert!(value("http_requests_post") >= 3.0, "{text}");
    assert!(value("http_status_2xx") >= 3.0, "{text}");
    // Client-side instrumentation shares the registry.
    assert!(value("client_calls") >= 3.0, "{text}");
    assert!(value("marshal_pbio_encode_count") >= 3.0, "{text}");
    // Quality management: every clean call fed an RTT sample, and the
    // selector pinned the (single) band — index 0 — on the gauge.
    assert!(value("qos_rtt_us_count") >= 3.0, "{text}");
    assert_eq!(value("qos_band"), 0.0, "{text}");

    // The JSON endpoint exposes the same registry.
    let resp = http.send(Request::get("/metrics.json")).unwrap();
    assert_eq!(resp.status, 200);
    let json = String::from_utf8(resp.body).unwrap();
    assert!(json.contains("\"qos.band\""), "{json}");
    assert!(json.contains("\"http.requests.post\""), "{json}");
}

#[test]
fn protocol_errors_are_not_retried() {
    let svc = echo_service();
    let server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();
    let mut client = SoapClient::connect(server.addr(), &svc, WireEncoding::Pbio).unwrap();
    // Unknown operation is a protocol error: the retry loop must give up
    // immediately instead of hammering the server.
    let err = client
        .call_with_retry("no_such_op", Value::Int(1))
        .unwrap_err();
    assert!(!err.is_retryable());
    assert_eq!(client.stats().retries, 0);
}

#[test]
fn shutdown_drains_inflight_connections_and_joins_threads() {
    let svc = echo_service();
    let mut server = SoapServerBuilder::new(&svc, WireEncoding::Pbio)
        .unwrap()
        .transport(ServerConfig::default().worker_threads(2))
        .handle("echo", |v| v)
        .bind("127.0.0.1:0".parse().unwrap())
        .unwrap();
    let addr = server.addr();

    // Park several keep-alive connections with completed calls.
    let mut clients: Vec<SoapClient> = (0..6)
        .map(|i: i64| {
            let mut c = SoapClient::connect(addr, &svc, WireEncoding::Pbio).unwrap();
            let v = Value::IntArray(vec![i]);
            assert_eq!(c.call("echo", v.clone()).unwrap(), v);
            c
        })
        .collect();
    assert!(server.active_connections() > 0);

    // shutdown() must return (all threads joined) and leave nothing open.
    server.shutdown();
    assert_eq!(server.active_connections(), 0, "all connections drained");

    // New connects are refused or die immediately; parked clients see a
    // closed connection on their next call.
    let err = clients[0]
        .call("echo", Value::IntArray(vec![1]))
        .unwrap_err();
    assert!(
        err.is_retryable(),
        "closed connection surfaces as retryable transport error"
    );
    drop(clients);
}
