//! Simulated-network adaptation tests: the Fig. 8/9 behavioral claims as
//! deterministic assertions over `sbq-netsim` virtual time.

use sbq_imaging::{image_quality_file, install_resize_handlers};
use sbq_mdsim::md_quality_file;
use sbq_netsim::{ClientProfile, CrossTraffic, FleetScenario, LinkSpec, SimLink};
use sbq_qos::{FleetQos, QualityFile, QualityManager};
use std::time::Duration;

const FULL_IMG: usize = 640 * 480 * 3;
const HALF_IMG: usize = 320 * 240 * 3;

/// Runs the imaging scenario for a policy, returning per-request response
/// times in ms and the count of half-resolution responses.
fn run_imaging(policy: &str) -> (Vec<f64>, usize) {
    let cross = CrossTraffic::square_wave(Duration::from_secs(40), Duration::from_secs(20), 0.92);
    let mut link = SimLink::new(LinkSpec::lan_100mbps()).with_cross_traffic(cross);
    let mut qm = QualityManager::new(image_quality_file(200.0));
    install_resize_handlers(qm.handlers());

    let mut times = Vec::new();
    let mut halves = 0;
    while link.now() < Duration::from_secs(120) {
        let half = match policy {
            "full" => false,
            "half" => true,
            _ => qm.select().message_type == "image_half",
        };
        let bytes = if half { HALF_IMG } else { FULL_IMG };
        let server = Duration::from_millis(if half { 2 } else { 8 });
        let rtt = link.request_response(200, bytes + 300, server);
        if policy == "adaptive" {
            qm.observe_rtt(rtt, server);
        }
        times.push(rtt.as_secs_f64() * 1e3);
        halves += half as usize;
        link.advance(Duration::from_millis(500));
    }
    (times, halves)
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn jitter(xs: &[f64]) -> f64 {
    xs.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (xs.len() - 1) as f64
}

/// Fig. 8: "the adaptative method's performance lies 'between' the
/// performance attained for large vs. small image files."
#[test]
fn adaptive_imaging_sits_between_fixed_policies() {
    let (full, _) = run_imaging("full");
    let (half, _) = run_imaging("half");
    let (adaptive, reduced) = run_imaging("adaptive");
    let (mf, mh, ma) = (mean(&full), mean(&half), mean(&adaptive));
    assert!(
        mh < ma && ma < mf,
        "means: half {mh}, adaptive {ma}, full {mf}"
    );
    assert!(reduced > 0, "adaptive policy never reduced");
    assert!(reduced < adaptive.len(), "adaptive policy never recovered");
}

/// Abstract of the paper: adaptation "significantly reduces the jitter
/// experienced".
#[test]
fn adaptation_reduces_jitter_vs_fixed_full() {
    let (full, _) = run_imaging("full");
    let (adaptive, _) = run_imaging("adaptive");
    assert!(
        jitter(&adaptive) < jitter(&full),
        "adaptive jitter {} >= full jitter {}",
        jitter(&adaptive),
        jitter(&full)
    );
}

/// Fig. 8 text: the adaptive client sends full resolution in good
/// conditions and low resolution during congestion phases.
#[test]
fn adaptive_tracks_congestion_phases() {
    let cross = CrossTraffic::square_wave(Duration::from_secs(40), Duration::from_secs(20), 0.92);
    let mut link = SimLink::new(LinkSpec::lan_100mbps()).with_cross_traffic(cross.clone());
    let mut qm = QualityManager::new(image_quality_file(200.0));
    install_resize_handlers(qm.handlers());
    let mut by_phase: [(usize, usize); 2] = [(0, 0); 2]; // (halves, total) per phase
    while link.now() < Duration::from_secs(120) {
        let congested = cross.load_at(link.now()) > 0.5;
        let half = qm.select().message_type == "image_half";
        let bytes = if half { HALF_IMG } else { FULL_IMG };
        let server = Duration::from_millis(5);
        let rtt = link.request_response(200, bytes + 300, server);
        qm.observe_rtt(rtt, server);
        let slot = &mut by_phase[congested as usize];
        slot.0 += half as usize;
        slot.1 += 1;
        link.advance(Duration::from_millis(500));
    }
    let idle_half_rate = by_phase[0].0 as f64 / by_phase[0].1 as f64;
    let busy_half_rate = by_phase[1].0 as f64 / by_phase[1].1 as f64;
    assert!(
        busy_half_rate > idle_half_rate + 0.3,
        "half-res rate congested {busy_half_rate} vs idle {idle_half_rate}"
    );
}

/// Fig. 9: the adaptive batch policy keeps response times inside the
/// policy band while fixed-4 spikes and fixed-1 under-utilizes.
#[test]
fn md_batching_bounds_response_times() {
    let bands = [120.0, 200.0, 350.0];
    let per_graph = 4400usize;
    let run = |policy: &str| -> (Vec<f64>, f64) {
        let cross = CrossTraffic::staircase(Duration::from_secs(15), &[0.0, 0.35, 0.85, 0.5]);
        let mut link = SimLink::new(LinkSpec::adsl()).with_cross_traffic(cross);
        let mut qm = QualityManager::new(md_quality_file(bands));
        let mut times = Vec::new();
        let mut steps_total = 0usize;
        while link.now() < Duration::from_secs(120) {
            let k = match policy {
                "fixed4" => 4,
                "fixed1" => 1,
                _ => match qm.select().message_type.as_str() {
                    "batch_4" => 4,
                    "batch_3" => 3,
                    "batch_2" => 2,
                    _ => 1,
                },
            };
            let server = Duration::from_micros(300 * k as u64);
            let rtt = link.request_response(150, k * per_graph + 200, server);
            if policy == "adaptive" {
                qm.observe_rtt(rtt, server);
            }
            times.push(rtt.as_secs_f64() * 1e3);
            steps_total += k;
            link.advance(Duration::from_millis(100));
        }
        (times, steps_total as f64)
    };

    let (fixed4, _) = run("fixed4");
    let (fixed1, steps1) = run("fixed1");
    let (adaptive, steps_a) = run("adaptive");

    let max4 = fixed4.iter().cloned().fold(0.0, f64::max);
    let maxa = adaptive.iter().cloned().fold(0.0, f64::max);
    assert!(maxa < max4, "adaptive max {maxa} >= fixed-4 max {max4}");
    // Adaptive moves more science than fixed-1 on the same virtual clock
    // budget (throughput per call is higher when the network allows it).
    let per_call_a = steps_a / adaptive.len() as f64;
    let per_call_1 = steps1 / fixed1.len() as f64;
    assert!(
        per_call_a > per_call_1 * 1.3,
        "adaptive {per_call_a} vs fixed1 {per_call_1} steps/call"
    );
}

/// §IV-C.h: the history mechanism prevents rapid oscillation between two
/// message types even at a band boundary.
#[test]
fn no_oscillation_at_band_boundary() {
    let mut qm = QualityManager::new(image_quality_file(200.0));
    // Alternate samples straddling the 200 ms boundary.
    let mut switches = 0;
    let mut last: Option<String> = None;
    for i in 0..200 {
        let rtt = if i % 2 == 0 { 195.0 } else { 205.0 };
        qm.attributes().update_attribute("rtt", rtt);
        let mt = qm.select().message_type.clone();
        if let Some(prev) = &last {
            if *prev != mt {
                switches += 1;
            }
        }
        last = Some(mt);
    }
    assert!(switches <= 2, "oscillated {switches} times");
}

/// Fleet property: clients with identical link conditions converge to
/// the *same* band at every phase of a flash crowd, and each client's
/// total band-switch count over the whole cycle is bounded — the
/// per-client hysteresis prevents herd oscillation even when thousands
/// of identical trackers see the same congestion epoch.
#[test]
fn identical_clients_converge_to_one_band_with_bounded_switches() {
    const N: usize = 64;
    let file =
        QualityFile::parse("attribute rtt\n0 100 - full\n100 250 - half\n250 inf - min\n").unwrap();
    let fleet = FleetQos::new(file);
    // One uniform population: every client is the same WAN profile over
    // the same flash-crowd backbone (seeds differ only in ±5 % jitter).
    let cross = CrossTraffic::flash_crowd(
        Duration::from_secs(2),
        Duration::from_secs(3),
        Duration::from_secs(5),
        Duration::from_secs(3),
        1.0,
    );
    let mut scenario = FleetScenario::new(cross).with_clients(N, ClientProfile::Wan, 11);

    let mut last = vec![usize::MAX; N];
    let mut switches = vec![0usize; N];
    let mut at_peak: Vec<usize> = Vec::new();
    while scenario.now() < Duration::from_secs(18) {
        for i in 0..N {
            let rtt = scenario.sample_rtt(i, 400, 20_000, Duration::from_micros(200));
            let band = fleet.observe_reported(&format!("c{i}"), rtt.as_secs_f64() * 1e3);
            if last[i] != usize::MAX && last[i] != band {
                switches[i] += 1;
            }
            last[i] = band;
        }
        // Mid-hold (peak runs 5 s..10 s of virtual time): snapshot the
        // fleet's view of the congested steady state.
        if scenario.now() == Duration::from_secs(9) {
            at_peak = last.clone();
        }
        scenario.advance(Duration::from_millis(250));
    }

    let worst = fleet.worst_band();
    assert!(
        at_peak.iter().all(|&b| b == worst),
        "not all clients degraded to band {worst} at peak: {at_peak:?}"
    );
    assert!(
        last.iter().all(|&b| b == 0),
        "not all clients recovered to band 0: {last:?}"
    );
    let pop = fleet.band_population();
    assert_eq!(pop[0], N, "band population after recovery: {pop:?}");
    // A full cycle is at most full→half→min→half→full (4 switches); a
    // jitter straggler may take a couple extra, but nobody flaps.
    for (i, &s) in switches.iter().enumerate() {
        assert!(
            (2..=6).contains(&s),
            "client {i} switched {s} times: {switches:?}"
        );
    }
}
