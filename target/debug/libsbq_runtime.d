/root/repo/target/debug/libsbq_runtime.rlib: /root/repo/crates/runtime/src/channel.rs /root/repo/crates/runtime/src/lib.rs /root/repo/crates/runtime/src/rand.rs /root/repo/crates/runtime/src/sync.rs
