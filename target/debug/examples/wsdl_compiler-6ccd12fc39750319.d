/root/repo/target/debug/examples/wsdl_compiler-6ccd12fc39750319.d: examples/wsdl_compiler.rs

/root/repo/target/debug/examples/wsdl_compiler-6ccd12fc39750319: examples/wsdl_compiler.rs

examples/wsdl_compiler.rs:
