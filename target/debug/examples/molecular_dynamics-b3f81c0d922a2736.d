/root/repo/target/debug/examples/molecular_dynamics-b3f81c0d922a2736.d: examples/molecular_dynamics.rs

/root/repo/target/debug/examples/molecular_dynamics-b3f81c0d922a2736: examples/molecular_dynamics.rs

examples/molecular_dynamics.rs:
