/root/repo/target/debug/examples/service_discovery-7ba5a24a7ade0bba.d: examples/service_discovery.rs

/root/repo/target/debug/examples/service_discovery-7ba5a24a7ade0bba: examples/service_discovery.rs

examples/service_discovery.rs:
