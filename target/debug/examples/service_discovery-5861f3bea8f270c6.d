/root/repo/target/debug/examples/service_discovery-5861f3bea8f270c6.d: examples/service_discovery.rs Cargo.toml

/root/repo/target/debug/examples/libservice_discovery-5861f3bea8f270c6.rmeta: examples/service_discovery.rs Cargo.toml

examples/service_discovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
