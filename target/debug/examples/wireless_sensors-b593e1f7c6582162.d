/root/repo/target/debug/examples/wireless_sensors-b593e1f7c6582162.d: examples/wireless_sensors.rs

/root/repo/target/debug/examples/wireless_sensors-b593e1f7c6582162: examples/wireless_sensors.rs

examples/wireless_sensors.rs:
