/root/repo/target/debug/examples/wireless_sensors-5787dc3a76f7bafa.d: examples/wireless_sensors.rs Cargo.toml

/root/repo/target/debug/examples/libwireless_sensors-5787dc3a76f7bafa.rmeta: examples/wireless_sensors.rs Cargo.toml

examples/wireless_sensors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
