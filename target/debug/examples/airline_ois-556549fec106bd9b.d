/root/repo/target/debug/examples/airline_ois-556549fec106bd9b.d: examples/airline_ois.rs Cargo.toml

/root/repo/target/debug/examples/libairline_ois-556549fec106bd9b.rmeta: examples/airline_ois.rs Cargo.toml

examples/airline_ois.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
