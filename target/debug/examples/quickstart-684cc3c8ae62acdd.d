/root/repo/target/debug/examples/quickstart-684cc3c8ae62acdd.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-684cc3c8ae62acdd: examples/quickstart.rs

examples/quickstart.rs:
