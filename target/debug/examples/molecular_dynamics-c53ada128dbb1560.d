/root/repo/target/debug/examples/molecular_dynamics-c53ada128dbb1560.d: examples/molecular_dynamics.rs Cargo.toml

/root/repo/target/debug/examples/libmolecular_dynamics-c53ada128dbb1560.rmeta: examples/molecular_dynamics.rs Cargo.toml

examples/molecular_dynamics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
