/root/repo/target/debug/examples/image_server-983a125024afc645.d: examples/image_server.rs

/root/repo/target/debug/examples/image_server-983a125024afc645: examples/image_server.rs

examples/image_server.rs:
