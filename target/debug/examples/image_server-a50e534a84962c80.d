/root/repo/target/debug/examples/image_server-a50e534a84962c80.d: examples/image_server.rs Cargo.toml

/root/repo/target/debug/examples/libimage_server-a50e534a84962c80.rmeta: examples/image_server.rs Cargo.toml

examples/image_server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
