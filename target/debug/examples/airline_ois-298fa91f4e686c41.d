/root/repo/target/debug/examples/airline_ois-298fa91f4e686c41.d: examples/airline_ois.rs

/root/repo/target/debug/examples/airline_ois-298fa91f4e686c41: examples/airline_ois.rs

examples/airline_ois.rs:
