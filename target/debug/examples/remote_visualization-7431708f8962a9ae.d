/root/repo/target/debug/examples/remote_visualization-7431708f8962a9ae.d: examples/remote_visualization.rs

/root/repo/target/debug/examples/remote_visualization-7431708f8962a9ae: examples/remote_visualization.rs

examples/remote_visualization.rs:
