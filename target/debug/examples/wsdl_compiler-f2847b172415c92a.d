/root/repo/target/debug/examples/wsdl_compiler-f2847b172415c92a.d: examples/wsdl_compiler.rs Cargo.toml

/root/repo/target/debug/examples/libwsdl_compiler-f2847b172415c92a.rmeta: examples/wsdl_compiler.rs Cargo.toml

examples/wsdl_compiler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
