/root/repo/target/debug/examples/remote_visualization-dcb51572eb935a4a.d: examples/remote_visualization.rs Cargo.toml

/root/repo/target/debug/examples/libremote_visualization-dcb51572eb935a4a.rmeta: examples/remote_visualization.rs Cargo.toml

examples/remote_visualization.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
