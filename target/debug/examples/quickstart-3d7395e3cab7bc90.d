/root/repo/target/debug/examples/quickstart-3d7395e3cab7bc90.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-3d7395e3cab7bc90.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
