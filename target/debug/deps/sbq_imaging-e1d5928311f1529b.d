/root/repo/target/debug/deps/sbq_imaging-e1d5928311f1529b.d: crates/imaging/src/lib.rs crates/imaging/src/ppm.rs crates/imaging/src/service.rs crates/imaging/src/starfield.rs crates/imaging/src/transform.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_imaging-e1d5928311f1529b.rmeta: crates/imaging/src/lib.rs crates/imaging/src/ppm.rs crates/imaging/src/service.rs crates/imaging/src/starfield.rs crates/imaging/src/transform.rs Cargo.toml

crates/imaging/src/lib.rs:
crates/imaging/src/ppm.rs:
crates/imaging/src/service.rs:
crates/imaging/src/starfield.rs:
crates/imaging/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
