/root/repo/target/debug/deps/cli-c8623f093635b49b.d: crates/wsdl/tests/cli.rs

/root/repo/target/debug/deps/cli-c8623f093635b49b: crates/wsdl/tests/cli.rs

crates/wsdl/tests/cli.rs:

# env-dep:CARGO_BIN_EXE_wsdlc=/root/repo/target/debug/wsdlc
