/root/repo/target/debug/deps/sbq_xml-95373ac04d1b3b04.d: crates/xml/src/lib.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_xml-95373ac04d1b3b04.rmeta: crates/xml/src/lib.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/writer.rs Cargo.toml

crates/xml/src/lib.rs:
crates/xml/src/escape.rs:
crates/xml/src/parser.rs:
crates/xml/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
