/root/repo/target/debug/deps/fig6-b2df757a30fc6322.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-b2df757a30fc6322: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
