/root/repo/target/debug/deps/viz-d7118b768bd1aa75.d: crates/bench/src/bin/viz.rs Cargo.toml

/root/repo/target/debug/deps/libviz-d7118b768bd1aa75.rmeta: crates/bench/src/bin/viz.rs Cargo.toml

crates/bench/src/bin/viz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
