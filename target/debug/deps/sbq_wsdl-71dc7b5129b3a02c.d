/root/repo/target/debug/deps/sbq_wsdl-71dc7b5129b3a02c.d: crates/wsdl/src/lib.rs crates/wsdl/src/compile.rs crates/wsdl/src/model.rs crates/wsdl/src/parse.rs crates/wsdl/src/write.rs

/root/repo/target/debug/deps/sbq_wsdl-71dc7b5129b3a02c: crates/wsdl/src/lib.rs crates/wsdl/src/compile.rs crates/wsdl/src/model.rs crates/wsdl/src/parse.rs crates/wsdl/src/write.rs

crates/wsdl/src/lib.rs:
crates/wsdl/src/compile.rs:
crates/wsdl/src/model.rs:
crates/wsdl/src/parse.rs:
crates/wsdl/src/write.rs:
