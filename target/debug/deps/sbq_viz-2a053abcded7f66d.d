/root/repo/target/debug/deps/sbq_viz-2a053abcded7f66d.d: crates/viz/src/lib.rs crates/viz/src/portal.rs crates/viz/src/render.rs crates/viz/src/svg.rs

/root/repo/target/debug/deps/sbq_viz-2a053abcded7f66d: crates/viz/src/lib.rs crates/viz/src/portal.rs crates/viz/src/render.rs crates/viz/src/svg.rs

crates/viz/src/lib.rs:
crates/viz/src/portal.rs:
crates/viz/src/render.rs:
crates/viz/src/svg.rs:
