/root/repo/target/debug/deps/transport_resilience-e59b53c9d20babc6.d: tests/transport_resilience.rs Cargo.toml

/root/repo/target/debug/deps/libtransport_resilience-e59b53c9d20babc6.rmeta: tests/transport_resilience.rs Cargo.toml

tests/transport_resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
