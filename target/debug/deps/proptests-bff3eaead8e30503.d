/root/repo/target/debug/deps/proptests-bff3eaead8e30503.d: crates/xdr/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-bff3eaead8e30503.rmeta: crates/xdr/tests/proptests.rs Cargo.toml

crates/xdr/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
