/root/repo/target/debug/deps/sbq_echo-01755e1cbc854a4d.d: crates/echo/src/lib.rs

/root/repo/target/debug/deps/libsbq_echo-01755e1cbc854a4d.rlib: crates/echo/src/lib.rs

/root/repo/target/debug/deps/libsbq_echo-01755e1cbc854a4d.rmeta: crates/echo/src/lib.rs

crates/echo/src/lib.rs:
