/root/repo/target/debug/deps/sbq_runtime-072c4b1a72237874.d: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/rand.rs crates/runtime/src/sync.rs

/root/repo/target/debug/deps/libsbq_runtime-072c4b1a72237874.rlib: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/rand.rs crates/runtime/src/sync.rs

/root/repo/target/debug/deps/libsbq_runtime-072c4b1a72237874.rmeta: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/rand.rs crates/runtime/src/sync.rs

crates/runtime/src/lib.rs:
crates/runtime/src/channel.rs:
crates/runtime/src/rand.rs:
crates/runtime/src/sync.rs:
