/root/repo/target/debug/deps/sbq_pbio-155876d89fbf6ad3.d: crates/pbio/src/lib.rs crates/pbio/src/endpoint.rs crates/pbio/src/format.rs crates/pbio/src/plan.rs crates/pbio/src/remote.rs crates/pbio/src/server.rs crates/pbio/src/wire.rs

/root/repo/target/debug/deps/sbq_pbio-155876d89fbf6ad3: crates/pbio/src/lib.rs crates/pbio/src/endpoint.rs crates/pbio/src/format.rs crates/pbio/src/plan.rs crates/pbio/src/remote.rs crates/pbio/src/server.rs crates/pbio/src/wire.rs

crates/pbio/src/lib.rs:
crates/pbio/src/endpoint.rs:
crates/pbio/src/format.rs:
crates/pbio/src/plan.rs:
crates/pbio/src/remote.rs:
crates/pbio/src/server.rs:
crates/pbio/src/wire.rs:
