/root/repo/target/debug/deps/sbq_model-91937dc40c5df7d4.d: crates/model/src/lib.rs crates/model/src/base64.rs crates/model/src/path.rs crates/model/src/project.rs crates/model/src/ty.rs crates/model/src/value.rs crates/model/src/workload.rs

/root/repo/target/debug/deps/libsbq_model-91937dc40c5df7d4.rlib: crates/model/src/lib.rs crates/model/src/base64.rs crates/model/src/path.rs crates/model/src/project.rs crates/model/src/ty.rs crates/model/src/value.rs crates/model/src/workload.rs

/root/repo/target/debug/deps/libsbq_model-91937dc40c5df7d4.rmeta: crates/model/src/lib.rs crates/model/src/base64.rs crates/model/src/path.rs crates/model/src/project.rs crates/model/src/ty.rs crates/model/src/value.rs crates/model/src/workload.rs

crates/model/src/lib.rs:
crates/model/src/base64.rs:
crates/model/src/path.rs:
crates/model/src/project.rs:
crates/model/src/ty.rs:
crates/model/src/value.rs:
crates/model/src/workload.rs:
