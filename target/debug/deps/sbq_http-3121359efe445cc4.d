/root/repo/target/debug/deps/sbq_http-3121359efe445cc4.d: crates/http/src/lib.rs crates/http/src/faults.rs crates/http/src/message.rs crates/http/src/server.rs

/root/repo/target/debug/deps/libsbq_http-3121359efe445cc4.rlib: crates/http/src/lib.rs crates/http/src/faults.rs crates/http/src/message.rs crates/http/src/server.rs

/root/repo/target/debug/deps/libsbq_http-3121359efe445cc4.rmeta: crates/http/src/lib.rs crates/http/src/faults.rs crates/http/src/message.rs crates/http/src/server.rs

crates/http/src/lib.rs:
crates/http/src/faults.rs:
crates/http/src/message.rs:
crates/http/src/server.rs:
