/root/repo/target/debug/deps/sbq_wsdl-2b5c671934ef221c.d: crates/wsdl/src/lib.rs crates/wsdl/src/compile.rs crates/wsdl/src/model.rs crates/wsdl/src/parse.rs crates/wsdl/src/write.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_wsdl-2b5c671934ef221c.rmeta: crates/wsdl/src/lib.rs crates/wsdl/src/compile.rs crates/wsdl/src/model.rs crates/wsdl/src/parse.rs crates/wsdl/src/write.rs Cargo.toml

crates/wsdl/src/lib.rs:
crates/wsdl/src/compile.rs:
crates/wsdl/src/model.rs:
crates/wsdl/src/parse.rs:
crates/wsdl/src/write.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
