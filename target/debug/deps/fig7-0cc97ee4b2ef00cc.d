/root/repo/target/debug/deps/fig7-0cc97ee4b2ef00cc.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-0cc97ee4b2ef00cc: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
