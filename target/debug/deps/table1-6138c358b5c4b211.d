/root/repo/target/debug/deps/table1-6138c358b5c4b211.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-6138c358b5c4b211: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
