/root/repo/target/debug/deps/proptests-3525e133c16a183a.d: crates/lz/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-3525e133c16a183a.rmeta: crates/lz/tests/proptests.rs Cargo.toml

crates/lz/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
