/root/repo/target/debug/deps/cli-0d34327f8faf7f4d.d: crates/wsdl/tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-0d34327f8faf7f4d.rmeta: crates/wsdl/tests/cli.rs Cargo.toml

crates/wsdl/tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_wsdlc=placeholder:wsdlc
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
