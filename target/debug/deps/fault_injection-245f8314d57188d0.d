/root/repo/target/debug/deps/fault_injection-245f8314d57188d0.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-245f8314d57188d0: tests/fault_injection.rs

tests/fault_injection.rs:
