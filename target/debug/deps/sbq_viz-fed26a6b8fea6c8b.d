/root/repo/target/debug/deps/sbq_viz-fed26a6b8fea6c8b.d: crates/viz/src/lib.rs crates/viz/src/portal.rs crates/viz/src/render.rs crates/viz/src/svg.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_viz-fed26a6b8fea6c8b.rmeta: crates/viz/src/lib.rs crates/viz/src/portal.rs crates/viz/src/render.rs crates/viz/src/svg.rs Cargo.toml

crates/viz/src/lib.rs:
crates/viz/src/portal.rs:
crates/viz/src/render.rs:
crates/viz/src/svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
