/root/repo/target/debug/deps/ablate-489af3267c837fed.d: crates/bench/src/bin/ablate.rs

/root/repo/target/debug/deps/ablate-489af3267c837fed: crates/bench/src/bin/ablate.rs

crates/bench/src/bin/ablate.rs:
