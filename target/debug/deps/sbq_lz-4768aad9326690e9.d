/root/repo/target/debug/deps/sbq_lz-4768aad9326690e9.d: crates/lz/src/lib.rs crates/lz/src/huffman.rs

/root/repo/target/debug/deps/sbq_lz-4768aad9326690e9: crates/lz/src/lib.rs crates/lz/src/huffman.rs

crates/lz/src/lib.rs:
crates/lz/src/huffman.rs:
