/root/repo/target/debug/deps/fig5-2f64f8b29ca834c3.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-2f64f8b29ca834c3: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
