/root/repo/target/debug/deps/sbq_http-19539716629b66d4.d: crates/http/src/lib.rs crates/http/src/faults.rs crates/http/src/message.rs crates/http/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_http-19539716629b66d4.rmeta: crates/http/src/lib.rs crates/http/src/faults.rs crates/http/src/message.rs crates/http/src/server.rs Cargo.toml

crates/http/src/lib.rs:
crates/http/src/faults.rs:
crates/http/src/message.rs:
crates/http/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
