/root/repo/target/debug/deps/micro-d1e98f3d69d750b8.d: crates/bench/src/bin/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-d1e98f3d69d750b8.rmeta: crates/bench/src/bin/micro.rs Cargo.toml

crates/bench/src/bin/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
