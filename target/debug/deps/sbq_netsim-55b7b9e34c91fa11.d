/root/repo/target/debug/deps/sbq_netsim-55b7b9e34c91fa11.d: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/traffic.rs

/root/repo/target/debug/deps/libsbq_netsim-55b7b9e34c91fa11.rlib: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/traffic.rs

/root/repo/target/debug/deps/libsbq_netsim-55b7b9e34c91fa11.rmeta: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/traffic.rs

crates/netsim/src/lib.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/traffic.rs:
