/root/repo/target/debug/deps/sbq_registry-e36cd228dba64845.d: crates/registry/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_registry-e36cd228dba64845.rmeta: crates/registry/src/lib.rs Cargo.toml

crates/registry/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
