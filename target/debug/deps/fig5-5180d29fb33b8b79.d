/root/repo/target/debug/deps/fig5-5180d29fb33b8b79.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-5180d29fb33b8b79.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
