/root/repo/target/debug/deps/sbq_xdr-01a7305fb18f23bc.d: crates/xdr/src/lib.rs crates/xdr/src/rpc.rs crates/xdr/src/xdr.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_xdr-01a7305fb18f23bc.rmeta: crates/xdr/src/lib.rs crates/xdr/src/rpc.rs crates/xdr/src/xdr.rs Cargo.toml

crates/xdr/src/lib.rs:
crates/xdr/src/rpc.rs:
crates/xdr/src/xdr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
