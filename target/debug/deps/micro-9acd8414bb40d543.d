/root/repo/target/debug/deps/micro-9acd8414bb40d543.d: crates/bench/src/bin/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-9acd8414bb40d543.rmeta: crates/bench/src/bin/micro.rs Cargo.toml

crates/bench/src/bin/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
