/root/repo/target/debug/deps/proptests-87d0f561f5eda522.d: crates/xml/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-87d0f561f5eda522.rmeta: crates/xml/tests/proptests.rs Cargo.toml

crates/xml/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
