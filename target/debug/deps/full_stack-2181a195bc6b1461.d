/root/repo/target/debug/deps/full_stack-2181a195bc6b1461.d: tests/full_stack.rs

/root/repo/target/debug/deps/full_stack-2181a195bc6b1461: tests/full_stack.rs

tests/full_stack.rs:
