/root/repo/target/debug/deps/table1-4b371ac7d75cc263.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-4b371ac7d75cc263.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
