/root/repo/target/debug/deps/end_to_end-29dc3092f2f108c0.d: crates/core/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-29dc3092f2f108c0: crates/core/tests/end_to_end.rs

crates/core/tests/end_to_end.rs:
