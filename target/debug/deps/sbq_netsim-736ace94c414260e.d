/root/repo/target/debug/deps/sbq_netsim-736ace94c414260e.d: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/traffic.rs

/root/repo/target/debug/deps/sbq_netsim-736ace94c414260e: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/traffic.rs

crates/netsim/src/lib.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/traffic.rs:
