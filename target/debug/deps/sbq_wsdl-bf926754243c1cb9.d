/root/repo/target/debug/deps/sbq_wsdl-bf926754243c1cb9.d: crates/wsdl/src/lib.rs crates/wsdl/src/compile.rs crates/wsdl/src/model.rs crates/wsdl/src/parse.rs crates/wsdl/src/write.rs

/root/repo/target/debug/deps/libsbq_wsdl-bf926754243c1cb9.rlib: crates/wsdl/src/lib.rs crates/wsdl/src/compile.rs crates/wsdl/src/model.rs crates/wsdl/src/parse.rs crates/wsdl/src/write.rs

/root/repo/target/debug/deps/libsbq_wsdl-bf926754243c1cb9.rmeta: crates/wsdl/src/lib.rs crates/wsdl/src/compile.rs crates/wsdl/src/model.rs crates/wsdl/src/parse.rs crates/wsdl/src/write.rs

crates/wsdl/src/lib.rs:
crates/wsdl/src/compile.rs:
crates/wsdl/src/model.rs:
crates/wsdl/src/parse.rs:
crates/wsdl/src/write.rs:
