/root/repo/target/debug/deps/proptests-cfcf831a6ce02b4b.d: crates/core/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-cfcf831a6ce02b4b.rmeta: crates/core/tests/proptests.rs Cargo.toml

crates/core/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
