/root/repo/target/debug/deps/sbq_viz-c8c67fdec80c2ea6.d: crates/viz/src/lib.rs crates/viz/src/portal.rs crates/viz/src/render.rs crates/viz/src/svg.rs

/root/repo/target/debug/deps/libsbq_viz-c8c67fdec80c2ea6.rlib: crates/viz/src/lib.rs crates/viz/src/portal.rs crates/viz/src/render.rs crates/viz/src/svg.rs

/root/repo/target/debug/deps/libsbq_viz-c8c67fdec80c2ea6.rmeta: crates/viz/src/lib.rs crates/viz/src/portal.rs crates/viz/src/render.rs crates/viz/src/svg.rs

crates/viz/src/lib.rs:
crates/viz/src/portal.rs:
crates/viz/src/render.rs:
crates/viz/src/svg.rs:
