/root/repo/target/debug/deps/transport_resilience-0c36b708331b4aeb.d: tests/transport_resilience.rs

/root/repo/target/debug/deps/transport_resilience-0c36b708331b4aeb: tests/transport_resilience.rs

tests/transport_resilience.rs:
