/root/repo/target/debug/deps/sbq_runtime-29764d873f1266e7.d: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/rand.rs crates/runtime/src/sync.rs

/root/repo/target/debug/deps/sbq_runtime-29764d873f1266e7: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/rand.rs crates/runtime/src/sync.rs

crates/runtime/src/lib.rs:
crates/runtime/src/channel.rs:
crates/runtime/src/rand.rs:
crates/runtime/src/sync.rs:
