/root/repo/target/debug/deps/sbq_mdsim-fb81a3a57ab69ba8.d: crates/mdsim/src/lib.rs crates/mdsim/src/graph.rs crates/mdsim/src/service.rs crates/mdsim/src/sim.rs

/root/repo/target/debug/deps/libsbq_mdsim-fb81a3a57ab69ba8.rlib: crates/mdsim/src/lib.rs crates/mdsim/src/graph.rs crates/mdsim/src/service.rs crates/mdsim/src/sim.rs

/root/repo/target/debug/deps/libsbq_mdsim-fb81a3a57ab69ba8.rmeta: crates/mdsim/src/lib.rs crates/mdsim/src/graph.rs crates/mdsim/src/service.rs crates/mdsim/src/sim.rs

crates/mdsim/src/lib.rs:
crates/mdsim/src/graph.rs:
crates/mdsim/src/service.rs:
crates/mdsim/src/sim.rs:
