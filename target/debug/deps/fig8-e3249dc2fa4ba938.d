/root/repo/target/debug/deps/fig8-e3249dc2fa4ba938.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-e3249dc2fa4ba938: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
