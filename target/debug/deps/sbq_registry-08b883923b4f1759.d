/root/repo/target/debug/deps/sbq_registry-08b883923b4f1759.d: crates/registry/src/lib.rs

/root/repo/target/debug/deps/libsbq_registry-08b883923b4f1759.rlib: crates/registry/src/lib.rs

/root/repo/target/debug/deps/libsbq_registry-08b883923b4f1759.rmeta: crates/registry/src/lib.rs

crates/registry/src/lib.rs:
