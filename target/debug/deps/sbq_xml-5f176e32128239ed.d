/root/repo/target/debug/deps/sbq_xml-5f176e32128239ed.d: crates/xml/src/lib.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/writer.rs

/root/repo/target/debug/deps/libsbq_xml-5f176e32128239ed.rlib: crates/xml/src/lib.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/writer.rs

/root/repo/target/debug/deps/libsbq_xml-5f176e32128239ed.rmeta: crates/xml/src/lib.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/writer.rs

crates/xml/src/lib.rs:
crates/xml/src/escape.rs:
crates/xml/src/parser.rs:
crates/xml/src/writer.rs:
