/root/repo/target/debug/deps/sbq_netsim-1a4c3c710b2d572e.d: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_netsim-1a4c3c710b2d572e.rmeta: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/traffic.rs Cargo.toml

crates/netsim/src/lib.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
