/root/repo/target/debug/deps/ablate-acfe76d0452c4898.d: crates/bench/src/bin/ablate.rs Cargo.toml

/root/repo/target/debug/deps/libablate-acfe76d0452c4898.rmeta: crates/bench/src/bin/ablate.rs Cargo.toml

crates/bench/src/bin/ablate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
