/root/repo/target/debug/deps/sbq_http-10373885be4782c2.d: crates/http/src/lib.rs crates/http/src/faults.rs crates/http/src/message.rs crates/http/src/server.rs

/root/repo/target/debug/deps/sbq_http-10373885be4782c2: crates/http/src/lib.rs crates/http/src/faults.rs crates/http/src/message.rs crates/http/src/server.rs

crates/http/src/lib.rs:
crates/http/src/faults.rs:
crates/http/src/message.rs:
crates/http/src/server.rs:
