/root/repo/target/debug/deps/soap_binq_repro-a1bd956848dafa30.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsoap_binq_repro-a1bd956848dafa30.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
