/root/repo/target/debug/deps/sbq_mdsim-eb51171842dd1364.d: crates/mdsim/src/lib.rs crates/mdsim/src/graph.rs crates/mdsim/src/service.rs crates/mdsim/src/sim.rs

/root/repo/target/debug/deps/sbq_mdsim-eb51171842dd1364: crates/mdsim/src/lib.rs crates/mdsim/src/graph.rs crates/mdsim/src/service.rs crates/mdsim/src/sim.rs

crates/mdsim/src/lib.rs:
crates/mdsim/src/graph.rs:
crates/mdsim/src/service.rs:
crates/mdsim/src/sim.rs:
