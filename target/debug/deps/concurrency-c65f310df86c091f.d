/root/repo/target/debug/deps/concurrency-c65f310df86c091f.d: crates/bench/src/bin/concurrency.rs

/root/repo/target/debug/deps/concurrency-c65f310df86c091f: crates/bench/src/bin/concurrency.rs

crates/bench/src/bin/concurrency.rs:
