/root/repo/target/debug/deps/sbq_qos-354053520cbfbac6.d: crates/qos/src/lib.rs crates/qos/src/attributes.rs crates/qos/src/estimator.rs crates/qos/src/file.rs crates/qos/src/handler.rs crates/qos/src/jacobson.rs crates/qos/src/manager.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_qos-354053520cbfbac6.rmeta: crates/qos/src/lib.rs crates/qos/src/attributes.rs crates/qos/src/estimator.rs crates/qos/src/file.rs crates/qos/src/handler.rs crates/qos/src/jacobson.rs crates/qos/src/manager.rs Cargo.toml

crates/qos/src/lib.rs:
crates/qos/src/attributes.rs:
crates/qos/src/estimator.rs:
crates/qos/src/file.rs:
crates/qos/src/handler.rs:
crates/qos/src/jacobson.rs:
crates/qos/src/manager.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
