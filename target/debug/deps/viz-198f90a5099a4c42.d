/root/repo/target/debug/deps/viz-198f90a5099a4c42.d: crates/bench/src/bin/viz.rs

/root/repo/target/debug/deps/viz-198f90a5099a4c42: crates/bench/src/bin/viz.rs

crates/bench/src/bin/viz.rs:
