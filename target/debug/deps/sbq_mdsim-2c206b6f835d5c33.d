/root/repo/target/debug/deps/sbq_mdsim-2c206b6f835d5c33.d: crates/mdsim/src/lib.rs crates/mdsim/src/graph.rs crates/mdsim/src/service.rs crates/mdsim/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_mdsim-2c206b6f835d5c33.rmeta: crates/mdsim/src/lib.rs crates/mdsim/src/graph.rs crates/mdsim/src/service.rs crates/mdsim/src/sim.rs Cargo.toml

crates/mdsim/src/lib.rs:
crates/mdsim/src/graph.rs:
crates/mdsim/src/service.rs:
crates/mdsim/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
