/root/repo/target/debug/deps/proptests-257ee0c21f59c801.d: crates/xml/tests/proptests.rs

/root/repo/target/debug/deps/proptests-257ee0c21f59c801: crates/xml/tests/proptests.rs

crates/xml/tests/proptests.rs:
