/root/repo/target/debug/deps/fig6-377f0170abddcbb2.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-377f0170abddcbb2: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
