/root/repo/target/debug/deps/fig9-e50ab0d1792c5ead.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-e50ab0d1792c5ead: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
