/root/repo/target/debug/deps/soap_binq_repro-12c3fe5de5ce2ed5.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsoap_binq_repro-12c3fe5de5ce2ed5.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
