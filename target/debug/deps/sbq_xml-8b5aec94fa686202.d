/root/repo/target/debug/deps/sbq_xml-8b5aec94fa686202.d: crates/xml/src/lib.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_xml-8b5aec94fa686202.rmeta: crates/xml/src/lib.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/writer.rs Cargo.toml

crates/xml/src/lib.rs:
crates/xml/src/escape.rs:
crates/xml/src/parser.rs:
crates/xml/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
