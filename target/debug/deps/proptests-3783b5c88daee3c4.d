/root/repo/target/debug/deps/proptests-3783b5c88daee3c4.d: crates/model/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-3783b5c88daee3c4.rmeta: crates/model/tests/proptests.rs Cargo.toml

crates/model/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
