/root/repo/target/debug/deps/sbq_viz-3d08d84c351ab9c1.d: crates/viz/src/lib.rs crates/viz/src/portal.rs crates/viz/src/render.rs crates/viz/src/svg.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_viz-3d08d84c351ab9c1.rmeta: crates/viz/src/lib.rs crates/viz/src/portal.rs crates/viz/src/render.rs crates/viz/src/svg.rs Cargo.toml

crates/viz/src/lib.rs:
crates/viz/src/portal.rs:
crates/viz/src/render.rs:
crates/viz/src/svg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
