/root/repo/target/debug/deps/sbq_mdsim-1c5eb45f274a3876.d: crates/mdsim/src/lib.rs crates/mdsim/src/graph.rs crates/mdsim/src/service.rs crates/mdsim/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_mdsim-1c5eb45f274a3876.rmeta: crates/mdsim/src/lib.rs crates/mdsim/src/graph.rs crates/mdsim/src/service.rs crates/mdsim/src/sim.rs Cargo.toml

crates/mdsim/src/lib.rs:
crates/mdsim/src/graph.rs:
crates/mdsim/src/service.rs:
crates/mdsim/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
