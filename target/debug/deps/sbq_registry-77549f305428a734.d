/root/repo/target/debug/deps/sbq_registry-77549f305428a734.d: crates/registry/src/lib.rs

/root/repo/target/debug/deps/sbq_registry-77549f305428a734: crates/registry/src/lib.rs

crates/registry/src/lib.rs:
