/root/repo/target/debug/deps/viz-808dc287b728d274.d: crates/bench/src/bin/viz.rs

/root/repo/target/debug/deps/viz-808dc287b728d274: crates/bench/src/bin/viz.rs

crates/bench/src/bin/viz.rs:
