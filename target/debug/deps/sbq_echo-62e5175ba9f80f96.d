/root/repo/target/debug/deps/sbq_echo-62e5175ba9f80f96.d: crates/echo/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_echo-62e5175ba9f80f96.rmeta: crates/echo/src/lib.rs Cargo.toml

crates/echo/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
