/root/repo/target/debug/deps/sbq_airline-5f011d080f9d3850.d: crates/airline/src/lib.rs crates/airline/src/data.rs crates/airline/src/event.rs crates/airline/src/rules.rs crates/airline/src/service.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_airline-5f011d080f9d3850.rmeta: crates/airline/src/lib.rs crates/airline/src/data.rs crates/airline/src/event.rs crates/airline/src/rules.rs crates/airline/src/service.rs Cargo.toml

crates/airline/src/lib.rs:
crates/airline/src/data.rs:
crates/airline/src/event.rs:
crates/airline/src/rules.rs:
crates/airline/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
