/root/repo/target/debug/deps/viz-ca5dba161e0edbce.d: crates/bench/src/bin/viz.rs Cargo.toml

/root/repo/target/debug/deps/libviz-ca5dba161e0edbce.rmeta: crates/bench/src/bin/viz.rs Cargo.toml

crates/bench/src/bin/viz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
