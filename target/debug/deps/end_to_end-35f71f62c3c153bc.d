/root/repo/target/debug/deps/end_to_end-35f71f62c3c153bc.d: crates/bench/benches/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-35f71f62c3c153bc: crates/bench/benches/end_to_end.rs

crates/bench/benches/end_to_end.rs:
