/root/repo/target/debug/deps/full_stack-32da54a9b0a70236.d: tests/full_stack.rs Cargo.toml

/root/repo/target/debug/deps/libfull_stack-32da54a9b0a70236.rmeta: tests/full_stack.rs Cargo.toml

tests/full_stack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
