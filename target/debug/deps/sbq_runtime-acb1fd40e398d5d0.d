/root/repo/target/debug/deps/sbq_runtime-acb1fd40e398d5d0.d: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/rand.rs crates/runtime/src/sync.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_runtime-acb1fd40e398d5d0.rmeta: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/rand.rs crates/runtime/src/sync.rs Cargo.toml

crates/runtime/src/lib.rs:
crates/runtime/src/channel.rs:
crates/runtime/src/rand.rs:
crates/runtime/src/sync.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
