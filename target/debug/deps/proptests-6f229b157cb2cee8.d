/root/repo/target/debug/deps/proptests-6f229b157cb2cee8.d: crates/pbio/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-6f229b157cb2cee8.rmeta: crates/pbio/tests/proptests.rs Cargo.toml

crates/pbio/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
