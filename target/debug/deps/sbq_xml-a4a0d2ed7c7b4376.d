/root/repo/target/debug/deps/sbq_xml-a4a0d2ed7c7b4376.d: crates/xml/src/lib.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/writer.rs

/root/repo/target/debug/deps/sbq_xml-a4a0d2ed7c7b4376: crates/xml/src/lib.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/writer.rs

crates/xml/src/lib.rs:
crates/xml/src/escape.rs:
crates/xml/src/parser.rs:
crates/xml/src/writer.rs:
