/root/repo/target/debug/deps/paper_claims-8bc018fdd8f70d5e.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-8bc018fdd8f70d5e: tests/paper_claims.rs

tests/paper_claims.rs:
