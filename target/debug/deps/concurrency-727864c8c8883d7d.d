/root/repo/target/debug/deps/concurrency-727864c8c8883d7d.d: crates/bench/src/bin/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-727864c8c8883d7d.rmeta: crates/bench/src/bin/concurrency.rs Cargo.toml

crates/bench/src/bin/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
