/root/repo/target/debug/deps/soap_binq-93741730fa84d37c.d: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/envelope.rs crates/core/src/marshal.rs crates/core/src/modes.rs crates/core/src/server.rs crates/core/src/xml_handler.rs

/root/repo/target/debug/deps/soap_binq-93741730fa84d37c: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/envelope.rs crates/core/src/marshal.rs crates/core/src/modes.rs crates/core/src/server.rs crates/core/src/xml_handler.rs

crates/core/src/lib.rs:
crates/core/src/client.rs:
crates/core/src/envelope.rs:
crates/core/src/marshal.rs:
crates/core/src/modes.rs:
crates/core/src/server.rs:
crates/core/src/xml_handler.rs:
