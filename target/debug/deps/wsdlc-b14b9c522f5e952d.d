/root/repo/target/debug/deps/wsdlc-b14b9c522f5e952d.d: crates/wsdl/src/bin/wsdlc.rs Cargo.toml

/root/repo/target/debug/deps/libwsdlc-b14b9c522f5e952d.rmeta: crates/wsdl/src/bin/wsdlc.rs Cargo.toml

crates/wsdl/src/bin/wsdlc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
