/root/repo/target/debug/deps/fig7-dae9fdddd462f19a.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/debug/deps/libfig7-dae9fdddd462f19a.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
