/root/repo/target/debug/deps/sbq_airline-1239e7ff448665e5.d: crates/airline/src/lib.rs crates/airline/src/data.rs crates/airline/src/event.rs crates/airline/src/rules.rs crates/airline/src/service.rs

/root/repo/target/debug/deps/sbq_airline-1239e7ff448665e5: crates/airline/src/lib.rs crates/airline/src/data.rs crates/airline/src/event.rs crates/airline/src/rules.rs crates/airline/src/service.rs

crates/airline/src/lib.rs:
crates/airline/src/data.rs:
crates/airline/src/event.rs:
crates/airline/src/rules.rs:
crates/airline/src/service.rs:
