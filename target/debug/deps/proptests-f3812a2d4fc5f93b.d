/root/repo/target/debug/deps/proptests-f3812a2d4fc5f93b.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f3812a2d4fc5f93b: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
