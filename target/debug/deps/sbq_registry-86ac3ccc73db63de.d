/root/repo/target/debug/deps/sbq_registry-86ac3ccc73db63de.d: crates/registry/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_registry-86ac3ccc73db63de.rmeta: crates/registry/src/lib.rs Cargo.toml

crates/registry/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
