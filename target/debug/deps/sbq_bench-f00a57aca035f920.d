/root/repo/target/debug/deps/sbq_bench-f00a57aca035f920.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_bench-f00a57aca035f920.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
