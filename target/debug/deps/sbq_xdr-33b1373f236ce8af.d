/root/repo/target/debug/deps/sbq_xdr-33b1373f236ce8af.d: crates/xdr/src/lib.rs crates/xdr/src/rpc.rs crates/xdr/src/xdr.rs

/root/repo/target/debug/deps/libsbq_xdr-33b1373f236ce8af.rlib: crates/xdr/src/lib.rs crates/xdr/src/rpc.rs crates/xdr/src/xdr.rs

/root/repo/target/debug/deps/libsbq_xdr-33b1373f236ce8af.rmeta: crates/xdr/src/lib.rs crates/xdr/src/rpc.rs crates/xdr/src/xdr.rs

crates/xdr/src/lib.rs:
crates/xdr/src/rpc.rs:
crates/xdr/src/xdr.rs:
