/root/repo/target/debug/deps/fig8-3281a191c5f6ae21.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-3281a191c5f6ae21.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
