/root/repo/target/debug/deps/proptests-ebeaf65c4322ac45.d: crates/model/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ebeaf65c4322ac45: crates/model/tests/proptests.rs

crates/model/tests/proptests.rs:
