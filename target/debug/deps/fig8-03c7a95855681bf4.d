/root/repo/target/debug/deps/fig8-03c7a95855681bf4.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-03c7a95855681bf4: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
