/root/repo/target/debug/deps/soap_binq-01bb85ed697740db.d: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/envelope.rs crates/core/src/marshal.rs crates/core/src/modes.rs crates/core/src/server.rs crates/core/src/xml_handler.rs

/root/repo/target/debug/deps/libsoap_binq-01bb85ed697740db.rlib: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/envelope.rs crates/core/src/marshal.rs crates/core/src/modes.rs crates/core/src/server.rs crates/core/src/xml_handler.rs

/root/repo/target/debug/deps/libsoap_binq-01bb85ed697740db.rmeta: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/envelope.rs crates/core/src/marshal.rs crates/core/src/modes.rs crates/core/src/server.rs crates/core/src/xml_handler.rs

crates/core/src/lib.rs:
crates/core/src/client.rs:
crates/core/src/envelope.rs:
crates/core/src/marshal.rs:
crates/core/src/modes.rs:
crates/core/src/server.rs:
crates/core/src/xml_handler.rs:
