/root/repo/target/debug/deps/sbq_xdr-891a81db5b58d7f5.d: crates/xdr/src/lib.rs crates/xdr/src/rpc.rs crates/xdr/src/xdr.rs

/root/repo/target/debug/deps/sbq_xdr-891a81db5b58d7f5: crates/xdr/src/lib.rs crates/xdr/src/rpc.rs crates/xdr/src/xdr.rs

crates/xdr/src/lib.rs:
crates/xdr/src/rpc.rs:
crates/xdr/src/xdr.rs:
