/root/repo/target/debug/deps/sbq_pbio-ebd2006104dd5bed.d: crates/pbio/src/lib.rs crates/pbio/src/endpoint.rs crates/pbio/src/format.rs crates/pbio/src/plan.rs crates/pbio/src/remote.rs crates/pbio/src/server.rs crates/pbio/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_pbio-ebd2006104dd5bed.rmeta: crates/pbio/src/lib.rs crates/pbio/src/endpoint.rs crates/pbio/src/format.rs crates/pbio/src/plan.rs crates/pbio/src/remote.rs crates/pbio/src/server.rs crates/pbio/src/wire.rs Cargo.toml

crates/pbio/src/lib.rs:
crates/pbio/src/endpoint.rs:
crates/pbio/src/format.rs:
crates/pbio/src/plan.rs:
crates/pbio/src/remote.rs:
crates/pbio/src/server.rs:
crates/pbio/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
