/root/repo/target/debug/deps/table1-63c4d7e7c07f5ff3.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-63c4d7e7c07f5ff3: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
