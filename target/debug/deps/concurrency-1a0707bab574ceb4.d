/root/repo/target/debug/deps/concurrency-1a0707bab574ceb4.d: crates/bench/src/bin/concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency-1a0707bab574ceb4.rmeta: crates/bench/src/bin/concurrency.rs Cargo.toml

crates/bench/src/bin/concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
