/root/repo/target/debug/deps/sbq_bench-5f2a759bd1593983.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsbq_bench-5f2a759bd1593983.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libsbq_bench-5f2a759bd1593983.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
