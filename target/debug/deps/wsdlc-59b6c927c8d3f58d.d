/root/repo/target/debug/deps/wsdlc-59b6c927c8d3f58d.d: crates/wsdl/src/bin/wsdlc.rs

/root/repo/target/debug/deps/wsdlc-59b6c927c8d3f58d: crates/wsdl/src/bin/wsdlc.rs

crates/wsdl/src/bin/wsdlc.rs:
