/root/repo/target/debug/deps/marshal-bfa4017439001beb.d: crates/bench/benches/marshal.rs

/root/repo/target/debug/deps/marshal-bfa4017439001beb: crates/bench/benches/marshal.rs

crates/bench/benches/marshal.rs:
