/root/repo/target/debug/deps/soap_binq_repro-42add2986a642e25.d: src/lib.rs

/root/repo/target/debug/deps/libsoap_binq_repro-42add2986a642e25.rlib: src/lib.rs

/root/repo/target/debug/deps/libsoap_binq_repro-42add2986a642e25.rmeta: src/lib.rs

src/lib.rs:
