/root/repo/target/debug/deps/sbq_qos-a0ad2cd7b303014d.d: crates/qos/src/lib.rs crates/qos/src/attributes.rs crates/qos/src/estimator.rs crates/qos/src/file.rs crates/qos/src/handler.rs crates/qos/src/jacobson.rs crates/qos/src/manager.rs

/root/repo/target/debug/deps/sbq_qos-a0ad2cd7b303014d: crates/qos/src/lib.rs crates/qos/src/attributes.rs crates/qos/src/estimator.rs crates/qos/src/file.rs crates/qos/src/handler.rs crates/qos/src/jacobson.rs crates/qos/src/manager.rs

crates/qos/src/lib.rs:
crates/qos/src/attributes.rs:
crates/qos/src/estimator.rs:
crates/qos/src/file.rs:
crates/qos/src/handler.rs:
crates/qos/src/jacobson.rs:
crates/qos/src/manager.rs:
