/root/repo/target/debug/deps/fig7-952fde9b7d4f6f4a.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-952fde9b7d4f6f4a: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
