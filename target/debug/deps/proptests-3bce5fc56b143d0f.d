/root/repo/target/debug/deps/proptests-3bce5fc56b143d0f.d: crates/lz/tests/proptests.rs

/root/repo/target/debug/deps/proptests-3bce5fc56b143d0f: crates/lz/tests/proptests.rs

crates/lz/tests/proptests.rs:
