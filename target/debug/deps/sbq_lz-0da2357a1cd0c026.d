/root/repo/target/debug/deps/sbq_lz-0da2357a1cd0c026.d: crates/lz/src/lib.rs crates/lz/src/huffman.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_lz-0da2357a1cd0c026.rmeta: crates/lz/src/lib.rs crates/lz/src/huffman.rs Cargo.toml

crates/lz/src/lib.rs:
crates/lz/src/huffman.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
