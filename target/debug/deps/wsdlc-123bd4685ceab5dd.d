/root/repo/target/debug/deps/wsdlc-123bd4685ceab5dd.d: crates/wsdl/src/bin/wsdlc.rs Cargo.toml

/root/repo/target/debug/deps/libwsdlc-123bd4685ceab5dd.rmeta: crates/wsdl/src/bin/wsdlc.rs Cargo.toml

crates/wsdl/src/bin/wsdlc.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
