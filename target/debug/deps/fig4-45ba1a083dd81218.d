/root/repo/target/debug/deps/fig4-45ba1a083dd81218.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-45ba1a083dd81218: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
