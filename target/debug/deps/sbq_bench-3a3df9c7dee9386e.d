/root/repo/target/debug/deps/sbq_bench-3a3df9c7dee9386e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_bench-3a3df9c7dee9386e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
