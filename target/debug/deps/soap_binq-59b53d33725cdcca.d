/root/repo/target/debug/deps/soap_binq-59b53d33725cdcca.d: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/envelope.rs crates/core/src/marshal.rs crates/core/src/modes.rs crates/core/src/server.rs crates/core/src/xml_handler.rs Cargo.toml

/root/repo/target/debug/deps/libsoap_binq-59b53d33725cdcca.rmeta: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/envelope.rs crates/core/src/marshal.rs crates/core/src/modes.rs crates/core/src/server.rs crates/core/src/xml_handler.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/client.rs:
crates/core/src/envelope.rs:
crates/core/src/marshal.rs:
crates/core/src/modes.rs:
crates/core/src/server.rs:
crates/core/src/xml_handler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
