/root/repo/target/debug/deps/ablate-3e09d0e2c5be3831.d: crates/bench/src/bin/ablate.rs Cargo.toml

/root/repo/target/debug/deps/libablate-3e09d0e2c5be3831.rmeta: crates/bench/src/bin/ablate.rs Cargo.toml

crates/bench/src/bin/ablate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
