/root/repo/target/debug/deps/sbq_pbio-d39d2e5743afb3fc.d: crates/pbio/src/lib.rs crates/pbio/src/endpoint.rs crates/pbio/src/format.rs crates/pbio/src/plan.rs crates/pbio/src/remote.rs crates/pbio/src/server.rs crates/pbio/src/wire.rs

/root/repo/target/debug/deps/libsbq_pbio-d39d2e5743afb3fc.rlib: crates/pbio/src/lib.rs crates/pbio/src/endpoint.rs crates/pbio/src/format.rs crates/pbio/src/plan.rs crates/pbio/src/remote.rs crates/pbio/src/server.rs crates/pbio/src/wire.rs

/root/repo/target/debug/deps/libsbq_pbio-d39d2e5743afb3fc.rmeta: crates/pbio/src/lib.rs crates/pbio/src/endpoint.rs crates/pbio/src/format.rs crates/pbio/src/plan.rs crates/pbio/src/remote.rs crates/pbio/src/server.rs crates/pbio/src/wire.rs

crates/pbio/src/lib.rs:
crates/pbio/src/endpoint.rs:
crates/pbio/src/format.rs:
crates/pbio/src/plan.rs:
crates/pbio/src/remote.rs:
crates/pbio/src/server.rs:
crates/pbio/src/wire.rs:
