/root/repo/target/debug/deps/sbq_xdr-ce558ae3dd0baac2.d: crates/xdr/src/lib.rs crates/xdr/src/rpc.rs crates/xdr/src/xdr.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_xdr-ce558ae3dd0baac2.rmeta: crates/xdr/src/lib.rs crates/xdr/src/rpc.rs crates/xdr/src/xdr.rs Cargo.toml

crates/xdr/src/lib.rs:
crates/xdr/src/rpc.rs:
crates/xdr/src/xdr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
