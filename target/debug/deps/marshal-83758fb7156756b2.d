/root/repo/target/debug/deps/marshal-83758fb7156756b2.d: crates/bench/benches/marshal.rs Cargo.toml

/root/repo/target/debug/deps/libmarshal-83758fb7156756b2.rmeta: crates/bench/benches/marshal.rs Cargo.toml

crates/bench/benches/marshal.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
