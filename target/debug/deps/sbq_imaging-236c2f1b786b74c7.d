/root/repo/target/debug/deps/sbq_imaging-236c2f1b786b74c7.d: crates/imaging/src/lib.rs crates/imaging/src/ppm.rs crates/imaging/src/service.rs crates/imaging/src/starfield.rs crates/imaging/src/transform.rs

/root/repo/target/debug/deps/libsbq_imaging-236c2f1b786b74c7.rlib: crates/imaging/src/lib.rs crates/imaging/src/ppm.rs crates/imaging/src/service.rs crates/imaging/src/starfield.rs crates/imaging/src/transform.rs

/root/repo/target/debug/deps/libsbq_imaging-236c2f1b786b74c7.rmeta: crates/imaging/src/lib.rs crates/imaging/src/ppm.rs crates/imaging/src/service.rs crates/imaging/src/starfield.rs crates/imaging/src/transform.rs

crates/imaging/src/lib.rs:
crates/imaging/src/ppm.rs:
crates/imaging/src/service.rs:
crates/imaging/src/starfield.rs:
crates/imaging/src/transform.rs:
