/root/repo/target/debug/deps/fig5-366871e3c945d08b.d: crates/bench/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-366871e3c945d08b: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
