/root/repo/target/debug/deps/sbq_airline-1b495ccac9b43d47.d: crates/airline/src/lib.rs crates/airline/src/data.rs crates/airline/src/event.rs crates/airline/src/rules.rs crates/airline/src/service.rs

/root/repo/target/debug/deps/libsbq_airline-1b495ccac9b43d47.rlib: crates/airline/src/lib.rs crates/airline/src/data.rs crates/airline/src/event.rs crates/airline/src/rules.rs crates/airline/src/service.rs

/root/repo/target/debug/deps/libsbq_airline-1b495ccac9b43d47.rmeta: crates/airline/src/lib.rs crates/airline/src/data.rs crates/airline/src/event.rs crates/airline/src/rules.rs crates/airline/src/service.rs

crates/airline/src/lib.rs:
crates/airline/src/data.rs:
crates/airline/src/event.rs:
crates/airline/src/rules.rs:
crates/airline/src/service.rs:
