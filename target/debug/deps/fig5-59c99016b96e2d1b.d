/root/repo/target/debug/deps/fig5-59c99016b96e2d1b.d: crates/bench/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-59c99016b96e2d1b.rmeta: crates/bench/src/bin/fig5.rs Cargo.toml

crates/bench/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
