/root/repo/target/debug/deps/sbq_model-25eb06182124b54d.d: crates/model/src/lib.rs crates/model/src/base64.rs crates/model/src/path.rs crates/model/src/project.rs crates/model/src/ty.rs crates/model/src/value.rs crates/model/src/workload.rs

/root/repo/target/debug/deps/sbq_model-25eb06182124b54d: crates/model/src/lib.rs crates/model/src/base64.rs crates/model/src/path.rs crates/model/src/project.rs crates/model/src/ty.rs crates/model/src/value.rs crates/model/src/workload.rs

crates/model/src/lib.rs:
crates/model/src/base64.rs:
crates/model/src/path.rs:
crates/model/src/project.rs:
crates/model/src/ty.rs:
crates/model/src/value.rs:
crates/model/src/workload.rs:
