/root/repo/target/debug/deps/proptests-19ecdf3ce1fe46c3.d: crates/pbio/tests/proptests.rs

/root/repo/target/debug/deps/proptests-19ecdf3ce1fe46c3: crates/pbio/tests/proptests.rs

crates/pbio/tests/proptests.rs:
