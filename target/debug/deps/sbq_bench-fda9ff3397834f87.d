/root/repo/target/debug/deps/sbq_bench-fda9ff3397834f87.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/sbq_bench-fda9ff3397834f87: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
