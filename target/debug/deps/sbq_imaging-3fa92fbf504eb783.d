/root/repo/target/debug/deps/sbq_imaging-3fa92fbf504eb783.d: crates/imaging/src/lib.rs crates/imaging/src/ppm.rs crates/imaging/src/service.rs crates/imaging/src/starfield.rs crates/imaging/src/transform.rs

/root/repo/target/debug/deps/sbq_imaging-3fa92fbf504eb783: crates/imaging/src/lib.rs crates/imaging/src/ppm.rs crates/imaging/src/service.rs crates/imaging/src/starfield.rs crates/imaging/src/transform.rs

crates/imaging/src/lib.rs:
crates/imaging/src/ppm.rs:
crates/imaging/src/service.rs:
crates/imaging/src/starfield.rs:
crates/imaging/src/transform.rs:
