/root/repo/target/debug/deps/sbq_qos-f4fbf4cb29d1e7aa.d: crates/qos/src/lib.rs crates/qos/src/attributes.rs crates/qos/src/estimator.rs crates/qos/src/file.rs crates/qos/src/handler.rs crates/qos/src/jacobson.rs crates/qos/src/manager.rs

/root/repo/target/debug/deps/libsbq_qos-f4fbf4cb29d1e7aa.rlib: crates/qos/src/lib.rs crates/qos/src/attributes.rs crates/qos/src/estimator.rs crates/qos/src/file.rs crates/qos/src/handler.rs crates/qos/src/jacobson.rs crates/qos/src/manager.rs

/root/repo/target/debug/deps/libsbq_qos-f4fbf4cb29d1e7aa.rmeta: crates/qos/src/lib.rs crates/qos/src/attributes.rs crates/qos/src/estimator.rs crates/qos/src/file.rs crates/qos/src/handler.rs crates/qos/src/jacobson.rs crates/qos/src/manager.rs

crates/qos/src/lib.rs:
crates/qos/src/attributes.rs:
crates/qos/src/estimator.rs:
crates/qos/src/file.rs:
crates/qos/src/handler.rs:
crates/qos/src/jacobson.rs:
crates/qos/src/manager.rs:
