/root/repo/target/debug/deps/ablate-af81cd0a90d07187.d: crates/bench/src/bin/ablate.rs

/root/repo/target/debug/deps/ablate-af81cd0a90d07187: crates/bench/src/bin/ablate.rs

crates/bench/src/bin/ablate.rs:
