/root/repo/target/debug/deps/fig6-6fc8596a6932c3fe.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-6fc8596a6932c3fe.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
