/root/repo/target/debug/deps/fig9-6fe5129aad7a48c7.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-6fe5129aad7a48c7: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
