/root/repo/target/debug/deps/micro-c1ef0dd6bd10a7dc.d: crates/bench/src/bin/micro.rs

/root/repo/target/debug/deps/micro-c1ef0dd6bd10a7dc: crates/bench/src/bin/micro.rs

crates/bench/src/bin/micro.rs:
