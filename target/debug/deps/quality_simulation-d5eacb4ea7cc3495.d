/root/repo/target/debug/deps/quality_simulation-d5eacb4ea7cc3495.d: tests/quality_simulation.rs

/root/repo/target/debug/deps/quality_simulation-d5eacb4ea7cc3495: tests/quality_simulation.rs

tests/quality_simulation.rs:
