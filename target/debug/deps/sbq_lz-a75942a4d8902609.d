/root/repo/target/debug/deps/sbq_lz-a75942a4d8902609.d: crates/lz/src/lib.rs crates/lz/src/huffman.rs

/root/repo/target/debug/deps/libsbq_lz-a75942a4d8902609.rlib: crates/lz/src/lib.rs crates/lz/src/huffman.rs

/root/repo/target/debug/deps/libsbq_lz-a75942a4d8902609.rmeta: crates/lz/src/lib.rs crates/lz/src/huffman.rs

crates/lz/src/lib.rs:
crates/lz/src/huffman.rs:
