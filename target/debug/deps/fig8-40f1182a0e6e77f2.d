/root/repo/target/debug/deps/fig8-40f1182a0e6e77f2.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/debug/deps/libfig8-40f1182a0e6e77f2.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
