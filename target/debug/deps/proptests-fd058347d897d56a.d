/root/repo/target/debug/deps/proptests-fd058347d897d56a.d: crates/xdr/tests/proptests.rs

/root/repo/target/debug/deps/proptests-fd058347d897d56a: crates/xdr/tests/proptests.rs

crates/xdr/tests/proptests.rs:
