/root/repo/target/debug/deps/sbq_http-8e2b8b0b3f964174.d: crates/http/src/lib.rs crates/http/src/faults.rs crates/http/src/message.rs crates/http/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_http-8e2b8b0b3f964174.rmeta: crates/http/src/lib.rs crates/http/src/faults.rs crates/http/src/message.rs crates/http/src/server.rs Cargo.toml

crates/http/src/lib.rs:
crates/http/src/faults.rs:
crates/http/src/message.rs:
crates/http/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
