/root/repo/target/debug/deps/micro-6314e343e5bb7839.d: crates/bench/src/bin/micro.rs

/root/repo/target/debug/deps/micro-6314e343e5bb7839: crates/bench/src/bin/micro.rs

crates/bench/src/bin/micro.rs:
