/root/repo/target/debug/deps/sbq_echo-797e5a37f4fe4faf.d: crates/echo/src/lib.rs

/root/repo/target/debug/deps/sbq_echo-797e5a37f4fe4faf: crates/echo/src/lib.rs

crates/echo/src/lib.rs:
