/root/repo/target/debug/deps/soap_binq_repro-0bbdc07c24f8f05d.d: src/lib.rs

/root/repo/target/debug/deps/soap_binq_repro-0bbdc07c24f8f05d: src/lib.rs

src/lib.rs:
