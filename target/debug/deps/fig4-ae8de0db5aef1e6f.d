/root/repo/target/debug/deps/fig4-ae8de0db5aef1e6f.d: crates/bench/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-ae8de0db5aef1e6f: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
