/root/repo/target/debug/deps/wsdlc-0ab95b02b855d4b3.d: crates/wsdl/src/bin/wsdlc.rs

/root/repo/target/debug/deps/wsdlc-0ab95b02b855d4b3: crates/wsdl/src/bin/wsdlc.rs

crates/wsdl/src/bin/wsdlc.rs:
