/root/repo/target/debug/deps/sbq_model-2192207ae133ef4a.d: crates/model/src/lib.rs crates/model/src/base64.rs crates/model/src/path.rs crates/model/src/project.rs crates/model/src/ty.rs crates/model/src/value.rs crates/model/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libsbq_model-2192207ae133ef4a.rmeta: crates/model/src/lib.rs crates/model/src/base64.rs crates/model/src/path.rs crates/model/src/project.rs crates/model/src/ty.rs crates/model/src/value.rs crates/model/src/workload.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/base64.rs:
crates/model/src/path.rs:
crates/model/src/project.rs:
crates/model/src/ty.rs:
crates/model/src/value.rs:
crates/model/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
