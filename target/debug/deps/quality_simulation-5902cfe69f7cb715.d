/root/repo/target/debug/deps/quality_simulation-5902cfe69f7cb715.d: tests/quality_simulation.rs Cargo.toml

/root/repo/target/debug/deps/libquality_simulation-5902cfe69f7cb715.rmeta: tests/quality_simulation.rs Cargo.toml

tests/quality_simulation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
