/root/repo/target/debug/deps/fig9-ba14422d5376c69c.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/debug/deps/libfig9-ba14422d5376c69c.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
