/root/repo/target/release/examples/quickstart-9e6c6602ea929c5d.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-9e6c6602ea929c5d: examples/quickstart.rs

examples/quickstart.rs:
