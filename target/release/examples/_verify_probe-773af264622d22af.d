/root/repo/target/release/examples/_verify_probe-773af264622d22af.d: examples/_verify_probe.rs

/root/repo/target/release/examples/_verify_probe-773af264622d22af: examples/_verify_probe.rs

examples/_verify_probe.rs:
