/root/repo/target/release/examples/service_discovery-34bfbba8e8944256.d: examples/service_discovery.rs

/root/repo/target/release/examples/service_discovery-34bfbba8e8944256: examples/service_discovery.rs

examples/service_discovery.rs:
