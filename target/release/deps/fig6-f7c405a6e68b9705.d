/root/repo/target/release/deps/fig6-f7c405a6e68b9705.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-f7c405a6e68b9705: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
