/root/repo/target/release/deps/sbq_model-ee49022a84f97291.d: crates/model/src/lib.rs crates/model/src/base64.rs crates/model/src/path.rs crates/model/src/project.rs crates/model/src/ty.rs crates/model/src/value.rs crates/model/src/workload.rs

/root/repo/target/release/deps/libsbq_model-ee49022a84f97291.rlib: crates/model/src/lib.rs crates/model/src/base64.rs crates/model/src/path.rs crates/model/src/project.rs crates/model/src/ty.rs crates/model/src/value.rs crates/model/src/workload.rs

/root/repo/target/release/deps/libsbq_model-ee49022a84f97291.rmeta: crates/model/src/lib.rs crates/model/src/base64.rs crates/model/src/path.rs crates/model/src/project.rs crates/model/src/ty.rs crates/model/src/value.rs crates/model/src/workload.rs

crates/model/src/lib.rs:
crates/model/src/base64.rs:
crates/model/src/path.rs:
crates/model/src/project.rs:
crates/model/src/ty.rs:
crates/model/src/value.rs:
crates/model/src/workload.rs:
