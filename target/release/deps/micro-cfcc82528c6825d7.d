/root/repo/target/release/deps/micro-cfcc82528c6825d7.d: crates/bench/src/bin/micro.rs

/root/repo/target/release/deps/micro-cfcc82528c6825d7: crates/bench/src/bin/micro.rs

crates/bench/src/bin/micro.rs:
