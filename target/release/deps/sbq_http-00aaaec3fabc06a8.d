/root/repo/target/release/deps/sbq_http-00aaaec3fabc06a8.d: crates/http/src/lib.rs crates/http/src/faults.rs crates/http/src/message.rs crates/http/src/server.rs

/root/repo/target/release/deps/libsbq_http-00aaaec3fabc06a8.rlib: crates/http/src/lib.rs crates/http/src/faults.rs crates/http/src/message.rs crates/http/src/server.rs

/root/repo/target/release/deps/libsbq_http-00aaaec3fabc06a8.rmeta: crates/http/src/lib.rs crates/http/src/faults.rs crates/http/src/message.rs crates/http/src/server.rs

crates/http/src/lib.rs:
crates/http/src/faults.rs:
crates/http/src/message.rs:
crates/http/src/server.rs:
