/root/repo/target/release/deps/fig8-88e541e67b6b3ef0.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-88e541e67b6b3ef0: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
