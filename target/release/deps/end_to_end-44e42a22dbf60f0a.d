/root/repo/target/release/deps/end_to_end-44e42a22dbf60f0a.d: crates/bench/benches/end_to_end.rs

/root/repo/target/release/deps/end_to_end-44e42a22dbf60f0a: crates/bench/benches/end_to_end.rs

crates/bench/benches/end_to_end.rs:
