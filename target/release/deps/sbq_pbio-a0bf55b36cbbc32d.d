/root/repo/target/release/deps/sbq_pbio-a0bf55b36cbbc32d.d: crates/pbio/src/lib.rs crates/pbio/src/endpoint.rs crates/pbio/src/format.rs crates/pbio/src/plan.rs crates/pbio/src/remote.rs crates/pbio/src/server.rs crates/pbio/src/wire.rs

/root/repo/target/release/deps/libsbq_pbio-a0bf55b36cbbc32d.rlib: crates/pbio/src/lib.rs crates/pbio/src/endpoint.rs crates/pbio/src/format.rs crates/pbio/src/plan.rs crates/pbio/src/remote.rs crates/pbio/src/server.rs crates/pbio/src/wire.rs

/root/repo/target/release/deps/libsbq_pbio-a0bf55b36cbbc32d.rmeta: crates/pbio/src/lib.rs crates/pbio/src/endpoint.rs crates/pbio/src/format.rs crates/pbio/src/plan.rs crates/pbio/src/remote.rs crates/pbio/src/server.rs crates/pbio/src/wire.rs

crates/pbio/src/lib.rs:
crates/pbio/src/endpoint.rs:
crates/pbio/src/format.rs:
crates/pbio/src/plan.rs:
crates/pbio/src/remote.rs:
crates/pbio/src/server.rs:
crates/pbio/src/wire.rs:
