/root/repo/target/release/deps/table1-be904adfe9efe673.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-be904adfe9efe673: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
