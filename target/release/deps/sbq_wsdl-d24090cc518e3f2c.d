/root/repo/target/release/deps/sbq_wsdl-d24090cc518e3f2c.d: crates/wsdl/src/lib.rs crates/wsdl/src/compile.rs crates/wsdl/src/model.rs crates/wsdl/src/parse.rs crates/wsdl/src/write.rs

/root/repo/target/release/deps/libsbq_wsdl-d24090cc518e3f2c.rlib: crates/wsdl/src/lib.rs crates/wsdl/src/compile.rs crates/wsdl/src/model.rs crates/wsdl/src/parse.rs crates/wsdl/src/write.rs

/root/repo/target/release/deps/libsbq_wsdl-d24090cc518e3f2c.rmeta: crates/wsdl/src/lib.rs crates/wsdl/src/compile.rs crates/wsdl/src/model.rs crates/wsdl/src/parse.rs crates/wsdl/src/write.rs

crates/wsdl/src/lib.rs:
crates/wsdl/src/compile.rs:
crates/wsdl/src/model.rs:
crates/wsdl/src/parse.rs:
crates/wsdl/src/write.rs:
