/root/repo/target/release/deps/fig5-76a6b7e7b6d4a476.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-76a6b7e7b6d4a476: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
