/root/repo/target/release/deps/sbq_lz-13d0530400994286.d: crates/lz/src/lib.rs crates/lz/src/huffman.rs

/root/repo/target/release/deps/libsbq_lz-13d0530400994286.rlib: crates/lz/src/lib.rs crates/lz/src/huffman.rs

/root/repo/target/release/deps/libsbq_lz-13d0530400994286.rmeta: crates/lz/src/lib.rs crates/lz/src/huffman.rs

crates/lz/src/lib.rs:
crates/lz/src/huffman.rs:
