/root/repo/target/release/deps/concurrency-85b1608e4423bc10.d: crates/bench/src/bin/concurrency.rs

/root/repo/target/release/deps/concurrency-85b1608e4423bc10: crates/bench/src/bin/concurrency.rs

crates/bench/src/bin/concurrency.rs:
