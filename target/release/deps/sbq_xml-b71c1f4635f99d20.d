/root/repo/target/release/deps/sbq_xml-b71c1f4635f99d20.d: crates/xml/src/lib.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/writer.rs

/root/repo/target/release/deps/libsbq_xml-b71c1f4635f99d20.rlib: crates/xml/src/lib.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/writer.rs

/root/repo/target/release/deps/libsbq_xml-b71c1f4635f99d20.rmeta: crates/xml/src/lib.rs crates/xml/src/escape.rs crates/xml/src/parser.rs crates/xml/src/writer.rs

crates/xml/src/lib.rs:
crates/xml/src/escape.rs:
crates/xml/src/parser.rs:
crates/xml/src/writer.rs:
