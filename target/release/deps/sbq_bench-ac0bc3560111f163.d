/root/repo/target/release/deps/sbq_bench-ac0bc3560111f163.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsbq_bench-ac0bc3560111f163.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libsbq_bench-ac0bc3560111f163.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
