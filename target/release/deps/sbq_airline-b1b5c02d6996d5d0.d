/root/repo/target/release/deps/sbq_airline-b1b5c02d6996d5d0.d: crates/airline/src/lib.rs crates/airline/src/data.rs crates/airline/src/event.rs crates/airline/src/rules.rs crates/airline/src/service.rs

/root/repo/target/release/deps/libsbq_airline-b1b5c02d6996d5d0.rlib: crates/airline/src/lib.rs crates/airline/src/data.rs crates/airline/src/event.rs crates/airline/src/rules.rs crates/airline/src/service.rs

/root/repo/target/release/deps/libsbq_airline-b1b5c02d6996d5d0.rmeta: crates/airline/src/lib.rs crates/airline/src/data.rs crates/airline/src/event.rs crates/airline/src/rules.rs crates/airline/src/service.rs

crates/airline/src/lib.rs:
crates/airline/src/data.rs:
crates/airline/src/event.rs:
crates/airline/src/rules.rs:
crates/airline/src/service.rs:
