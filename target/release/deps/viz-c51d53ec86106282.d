/root/repo/target/release/deps/viz-c51d53ec86106282.d: crates/bench/src/bin/viz.rs

/root/repo/target/release/deps/viz-c51d53ec86106282: crates/bench/src/bin/viz.rs

crates/bench/src/bin/viz.rs:
