/root/repo/target/release/deps/soap_binq-047a60da1b97609c.d: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/envelope.rs crates/core/src/marshal.rs crates/core/src/modes.rs crates/core/src/server.rs crates/core/src/xml_handler.rs

/root/repo/target/release/deps/libsoap_binq-047a60da1b97609c.rlib: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/envelope.rs crates/core/src/marshal.rs crates/core/src/modes.rs crates/core/src/server.rs crates/core/src/xml_handler.rs

/root/repo/target/release/deps/libsoap_binq-047a60da1b97609c.rmeta: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/envelope.rs crates/core/src/marshal.rs crates/core/src/modes.rs crates/core/src/server.rs crates/core/src/xml_handler.rs

crates/core/src/lib.rs:
crates/core/src/client.rs:
crates/core/src/envelope.rs:
crates/core/src/marshal.rs:
crates/core/src/modes.rs:
crates/core/src/server.rs:
crates/core/src/xml_handler.rs:
