/root/repo/target/release/deps/sbq_echo-d6d56d46d230add4.d: crates/echo/src/lib.rs

/root/repo/target/release/deps/libsbq_echo-d6d56d46d230add4.rlib: crates/echo/src/lib.rs

/root/repo/target/release/deps/libsbq_echo-d6d56d46d230add4.rmeta: crates/echo/src/lib.rs

crates/echo/src/lib.rs:
