/root/repo/target/release/deps/sbq_runtime-f70a4be8b51f83b1.d: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/rand.rs crates/runtime/src/sync.rs

/root/repo/target/release/deps/libsbq_runtime-f70a4be8b51f83b1.rlib: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/rand.rs crates/runtime/src/sync.rs

/root/repo/target/release/deps/libsbq_runtime-f70a4be8b51f83b1.rmeta: crates/runtime/src/lib.rs crates/runtime/src/channel.rs crates/runtime/src/rand.rs crates/runtime/src/sync.rs

crates/runtime/src/lib.rs:
crates/runtime/src/channel.rs:
crates/runtime/src/rand.rs:
crates/runtime/src/sync.rs:
