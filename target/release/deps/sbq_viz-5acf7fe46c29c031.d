/root/repo/target/release/deps/sbq_viz-5acf7fe46c29c031.d: crates/viz/src/lib.rs crates/viz/src/portal.rs crates/viz/src/render.rs crates/viz/src/svg.rs

/root/repo/target/release/deps/libsbq_viz-5acf7fe46c29c031.rlib: crates/viz/src/lib.rs crates/viz/src/portal.rs crates/viz/src/render.rs crates/viz/src/svg.rs

/root/repo/target/release/deps/libsbq_viz-5acf7fe46c29c031.rmeta: crates/viz/src/lib.rs crates/viz/src/portal.rs crates/viz/src/render.rs crates/viz/src/svg.rs

crates/viz/src/lib.rs:
crates/viz/src/portal.rs:
crates/viz/src/render.rs:
crates/viz/src/svg.rs:
