/root/repo/target/release/deps/sbq_netsim-db062f25aca4abf1.d: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/traffic.rs

/root/repo/target/release/deps/libsbq_netsim-db062f25aca4abf1.rlib: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/traffic.rs

/root/repo/target/release/deps/libsbq_netsim-db062f25aca4abf1.rmeta: crates/netsim/src/lib.rs crates/netsim/src/clock.rs crates/netsim/src/traffic.rs

crates/netsim/src/lib.rs:
crates/netsim/src/clock.rs:
crates/netsim/src/traffic.rs:
