/root/repo/target/release/deps/fig4-9843843602199e3c.d: crates/bench/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-9843843602199e3c: crates/bench/src/bin/fig4.rs

crates/bench/src/bin/fig4.rs:
