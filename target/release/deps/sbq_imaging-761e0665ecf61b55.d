/root/repo/target/release/deps/sbq_imaging-761e0665ecf61b55.d: crates/imaging/src/lib.rs crates/imaging/src/ppm.rs crates/imaging/src/service.rs crates/imaging/src/starfield.rs crates/imaging/src/transform.rs

/root/repo/target/release/deps/libsbq_imaging-761e0665ecf61b55.rlib: crates/imaging/src/lib.rs crates/imaging/src/ppm.rs crates/imaging/src/service.rs crates/imaging/src/starfield.rs crates/imaging/src/transform.rs

/root/repo/target/release/deps/libsbq_imaging-761e0665ecf61b55.rmeta: crates/imaging/src/lib.rs crates/imaging/src/ppm.rs crates/imaging/src/service.rs crates/imaging/src/starfield.rs crates/imaging/src/transform.rs

crates/imaging/src/lib.rs:
crates/imaging/src/ppm.rs:
crates/imaging/src/service.rs:
crates/imaging/src/starfield.rs:
crates/imaging/src/transform.rs:
