/root/repo/target/release/deps/ablate-cb0a3428850d66f6.d: crates/bench/src/bin/ablate.rs

/root/repo/target/release/deps/ablate-cb0a3428850d66f6: crates/bench/src/bin/ablate.rs

crates/bench/src/bin/ablate.rs:
