/root/repo/target/release/deps/sbq_qos-a348cef8096e88ad.d: crates/qos/src/lib.rs crates/qos/src/attributes.rs crates/qos/src/estimator.rs crates/qos/src/file.rs crates/qos/src/handler.rs crates/qos/src/jacobson.rs crates/qos/src/manager.rs

/root/repo/target/release/deps/libsbq_qos-a348cef8096e88ad.rlib: crates/qos/src/lib.rs crates/qos/src/attributes.rs crates/qos/src/estimator.rs crates/qos/src/file.rs crates/qos/src/handler.rs crates/qos/src/jacobson.rs crates/qos/src/manager.rs

/root/repo/target/release/deps/libsbq_qos-a348cef8096e88ad.rmeta: crates/qos/src/lib.rs crates/qos/src/attributes.rs crates/qos/src/estimator.rs crates/qos/src/file.rs crates/qos/src/handler.rs crates/qos/src/jacobson.rs crates/qos/src/manager.rs

crates/qos/src/lib.rs:
crates/qos/src/attributes.rs:
crates/qos/src/estimator.rs:
crates/qos/src/file.rs:
crates/qos/src/handler.rs:
crates/qos/src/jacobson.rs:
crates/qos/src/manager.rs:
