/root/repo/target/release/deps/fig7-ea40f05617ea525e.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-ea40f05617ea525e: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
