/root/repo/target/release/deps/sbq_mdsim-5c1ba303fdc85c35.d: crates/mdsim/src/lib.rs crates/mdsim/src/graph.rs crates/mdsim/src/service.rs crates/mdsim/src/sim.rs

/root/repo/target/release/deps/libsbq_mdsim-5c1ba303fdc85c35.rlib: crates/mdsim/src/lib.rs crates/mdsim/src/graph.rs crates/mdsim/src/service.rs crates/mdsim/src/sim.rs

/root/repo/target/release/deps/libsbq_mdsim-5c1ba303fdc85c35.rmeta: crates/mdsim/src/lib.rs crates/mdsim/src/graph.rs crates/mdsim/src/service.rs crates/mdsim/src/sim.rs

crates/mdsim/src/lib.rs:
crates/mdsim/src/graph.rs:
crates/mdsim/src/service.rs:
crates/mdsim/src/sim.rs:
