/root/repo/target/release/deps/soap_binq_repro-6ff6dd222eee289e.d: src/lib.rs

/root/repo/target/release/deps/libsoap_binq_repro-6ff6dd222eee289e.rlib: src/lib.rs

/root/repo/target/release/deps/libsoap_binq_repro-6ff6dd222eee289e.rmeta: src/lib.rs

src/lib.rs:
