/root/repo/target/release/deps/fig9-86920ecd8fe7e0f0.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-86920ecd8fe7e0f0: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
