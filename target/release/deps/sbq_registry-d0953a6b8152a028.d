/root/repo/target/release/deps/sbq_registry-d0953a6b8152a028.d: crates/registry/src/lib.rs

/root/repo/target/release/deps/libsbq_registry-d0953a6b8152a028.rlib: crates/registry/src/lib.rs

/root/repo/target/release/deps/libsbq_registry-d0953a6b8152a028.rmeta: crates/registry/src/lib.rs

crates/registry/src/lib.rs:
