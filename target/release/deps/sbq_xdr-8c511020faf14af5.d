/root/repo/target/release/deps/sbq_xdr-8c511020faf14af5.d: crates/xdr/src/lib.rs crates/xdr/src/rpc.rs crates/xdr/src/xdr.rs

/root/repo/target/release/deps/libsbq_xdr-8c511020faf14af5.rlib: crates/xdr/src/lib.rs crates/xdr/src/rpc.rs crates/xdr/src/xdr.rs

/root/repo/target/release/deps/libsbq_xdr-8c511020faf14af5.rmeta: crates/xdr/src/lib.rs crates/xdr/src/rpc.rs crates/xdr/src/xdr.rs

crates/xdr/src/lib.rs:
crates/xdr/src/rpc.rs:
crates/xdr/src/xdr.rs:
